// Package lint is lclint's analysis framework plus the eight
// repo-specific analyzers that machine-check the lock runtime's
// correctness invariants (see cmd/lclint):
//
//   - lockpair: every golc Lock/RLock acquisition must be released on
//     every path out of the function (defer-aware).
//   - nestedpark: no potentially-parking acquisition while a golc lock
//     is held — the PR-1 "never park while holding" rule that
//     RWMutex.LockNested exists for.
//   - lockorder: the static acquisition-order graph (golc lock classes
//     plus oltp's table→partition→record logical hierarchy) must stay
//     acyclic.
//   - ctxlock: context-aware acquisition paths must not be fed
//     context.Background()/TODO() when a real deadline/cancel context
//     is in scope — the deadlock detector's victim-kill path depends
//     on waits being cancellable.
//   - policyreg: golc.RegisterPolicy only from init/main, no duplicate
//     or reserved policy names.
//   - heldcall: no blocking or alloc-heavy work (I/O, channel
//     operations, time.Sleep, fmt printing to writers) inside a golc
//     critical section.
//   - atomicfield: a struct field touched via sync/atomic anywhere
//     must be accessed atomically everywhere.
//   - waitseam: every ContentionPolicy.Wait invocation must be
//     bracketed by Handle.WaitStart/RecordWait — the flight recorder's
//     one-seam guarantee, pinned statically.
//
// The analyzers are whole-program: per-package function summaries
// (FuncFacts — parks?, lock-class touch set, held-set delta,
// ctx-threading, blocking work) serialize to a content-hash-keyed
// FactsStore (facts.go), and a Program resolves facts for imported
// packages alongside their export data — from the store on a hash hit,
// from source on demand otherwise — so a helper that parks three
// packages away is still a parking call here.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer/Pass/Diagnostic, testdata golden tests in linttest), but is
// self-contained on the standard library: this module has no external
// dependencies and its toolchain gates run offline, so the framework
// loads packages itself — source-parsing the packages under analysis
// and resolving their imports through the compiler's export data (see
// load.go) instead of go/packages.
//
// Findings are suppressed with an explicit, reasoned annotation:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. A suppression
// without a reason is itself a finding — the decision record is the
// point, not the mute button.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. The shape follows
// golang.org/x/tools/go/analysis so the checks could migrate to the
// real framework if this module ever grows the dependency.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:allow
	// suppressions. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description `lclint -list` prints:
	// the invariant, and why the repo holds it.
	Doc string

	// Run analyzes one package and reports findings through
	// pass.Report.
	Run func(pass *Pass) error

	// Begin, when non-nil, resets any cross-package state before a
	// whole-program run (lockorder accumulates its acquisition graph
	// across packages).
	Begin func()

	// End, when non-nil, runs after every package has been analyzed
	// and may report program-wide findings (e.g. lock-order cycles
	// whose edges live in different packages).
	End func(report func(Diagnostic))
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Prog is the whole-program run this pass belongs to: the merged
	// facts view over the package's imports.
	Prog *Program

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FactsOf returns the whole-program facts for fn — same-package or
// imported alike — or nil when nothing is known about it.
func (p *Pass) FactsOf(fn *types.Func) *FuncFacts {
	if p.Prog == nil {
		return nil
	}
	return p.Prog.FactsOf(fn)
}

// summary adapts FactsOf to the walker's summary-injection hook.
func (p *Pass) summary() func(*types.Func) *FuncFacts {
	return p.FactsOf
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Lockpair, Nestedpark, Lockorder, Ctxlock, Policyreg, Heldcall, Atomicfield, Waitseam}
}

// ByName resolves a comma-separated analyzer list ("lockpair,ctxlock").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, a := range All() {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Run applies analyzers to pkgs without cross-package fact resolution
// (same-package summaries still close): a convenience wrapper over
// NewProgram(...).Run for callers with no Loader. Program.Run
// documents the filtering and ordering contract.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	return NewProgram(nil, NewFactsStore(""), pkgs).Run(analyzers)
}
