package sim

import (
	"testing"
	"time"
)

func TestProcSleepAdvancesTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time = -1
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * time.Nanosecond)
		woke = k.Now()
	})
	k.Drain()
	if woke != 100 {
		t.Fatalf("woke at %d, want 100", woke)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	k := NewKernel(1)
	var marks []Time
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			marks = append(marks, k.Now())
		}
	})
	k.Drain()
	for i, m := range marks {
		if m != Time((i+1)*10) {
			t.Fatalf("marks[%d] = %d, want %d", i, m, (i+1)*10)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20) // wakes at 30
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
		p.Sleep(20) // wakes at 40
		order = append(order, "b40")
	})
	k.Drain()
	want := []string{"a10", "b20", "a30", "b40"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkAndDeferredUnpark(t *testing.T) {
	k := NewKernel(1)
	var woke Time = -1
	p := k.Spawn("parker", func(p *Proc) {
		if sig := p.Park(); sig != WakeSignal {
			t.Errorf("sig = %v, want WakeSignal", sig)
		}
		woke = k.Now()
	})
	k.After(500, func() { p.UnparkDeferred() })
	k.Drain()
	if woke != 500 {
		t.Fatalf("woke at %d, want 500", woke)
	}
}

func TestParkTimeoutExpires(t *testing.T) {
	k := NewKernel(1)
	var sig procSignal
	var woke Time
	k.Spawn("p", func(p *Proc) {
		sig = p.ParkTimeout(250)
		woke = k.Now()
	})
	k.Drain()
	if sig != WakeTimeout {
		t.Fatalf("sig = %v, want WakeTimeout", sig)
	}
	if woke != 250 {
		t.Fatalf("woke at %d, want 250", woke)
	}
}

func TestParkTimeoutUnparkedEarly(t *testing.T) {
	k := NewKernel(1)
	var sig procSignal
	var woke Time
	p := k.Spawn("p", func(p *Proc) {
		sig = p.ParkTimeout(1000)
		woke = k.Now()
	})
	k.After(100, func() { p.UnparkDeferred() })
	k.Drain()
	if sig != WakeSignal {
		t.Fatalf("sig = %v, want WakeSignal", sig)
	}
	if woke != 100 {
		t.Fatalf("woke at %d, want 100", woke)
	}
	if k.Pending() != 0 {
		t.Fatalf("timeout event leaked: %d pending", k.Pending())
	}
}

func TestParkAtPastDeadlineReturnsImmediately(t *testing.T) {
	k := NewKernel(1)
	done := false
	k.Spawn("p", func(p *Proc) {
		p.Sleep(100)
		if sig := p.ParkAt(50); sig != WakeTimeout {
			t.Errorf("sig = %v, want WakeTimeout", sig)
		}
		done = true
	})
	k.Drain()
	if !done {
		t.Fatal("proc did not finish")
	}
}

func TestProcDoneFlag(t *testing.T) {
	k := NewKernel(1)
	p := k.Spawn("p", func(p *Proc) { p.Sleep(10) })
	if p.Done() {
		t.Fatal("done before running")
	}
	k.Drain()
	if !p.Done() {
		t.Fatal("not done after drain")
	}
}

func TestUnparkDeferredOnFinishedProcIsNoop(t *testing.T) {
	k := NewKernel(1)
	p := k.Spawn("p", func(p *Proc) {})
	k.After(10, func() { p.UnparkDeferred() })
	k.Drain() // must not panic
}

func TestManyProcsNoLeak(t *testing.T) {
	k := NewKernel(1)
	const n = 200
	finished := 0
	for i := 0; i < n; i++ {
		d := Duration(i)
		k.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			finished++
		})
	}
	k.Drain()
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
	if k.procs != 0 {
		t.Fatalf("proc leak: %d live", k.procs)
	}
}

func TestProcToProcUnpark(t *testing.T) {
	k := NewKernel(1)
	var order []string
	var a *Proc
	a = k.Spawn("a", func(p *Proc) {
		p.Park()
		order = append(order, "a-woke")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(100)
		order = append(order, "b-unparks")
		a.UnparkDeferred()
		p.Sleep(1)
		order = append(order, "b-after")
	})
	k.Drain()
	want := []string{"b-unparks", "a-woke", "b-after"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
