package locks

import (
	"repro/internal/cpu"
)

// WaitStatus is the outcome of a single TP-MCS queue wait.
type WaitStatus int

// Outcomes of TPMCS.AcquireManaged.
const (
	// WaitGranted: the caller holds the lock.
	WaitGranted WaitStatus = iota
	// WaitAborted: the caller's manager aborted the wait (e.g. it
	// claimed a sleep slot); the caller does not hold the lock.
	WaitAborted
)

// WaitManager observes a TP-MCS wait and may abort it. The load-control
// mechanism is a WaitManager: it registers spinners as descheduling
// candidates and aborts their waits when they claim sleep slots.
type WaitManager interface {
	// BeginWait is called when t starts spinning in the queue. abort
	// tries to remove t from the queue: it returns true on success,
	// after which t's SpinWait returns SpinAborted; it returns false
	// if t already owns the lock or left the queue.
	BeginWait(t *cpu.Thread, abort func() bool)
	// EndWait is called when t stops spinning for any reason.
	EndWait(t *cpu.Thread)
}

// TPMCS is a time-published MCS lock (He, Scherer, Scott — paper §2.1):
// a FIFO queue lock whose releaser skips and removes waiters that are
// currently descheduled, handing the lock only to running threads.
// Removed waiters re-enqueue when the scheduler runs them again.
//
// TP-MCS protects the queue from preempted waiters but not the critical
// section from a preempted holder — which is exactly the residual
// problem load control solves.
type TPMCS struct {
	env    *Env
	holder *cpu.Thread
	queue  []*qnode
	guard  holderGuard

	// Removals counts preempted waiters removed by releasers.
	Removals uint64
}

// NewTPMCS returns a TP-MCS lock factory.
func NewTPMCS(env *Env) Lock {
	return newTPMCS(env)
}

func newTPMCS(env *Env) *TPMCS {
	l := &TPMCS{env: env}
	l.guard = holderGuard{env: env, spinners: l.forEachSpinner}
	return l
}

// Name implements Lock.
func (l *TPMCS) Name() string { return "tp-mcs" }

// Holder returns the current owner (nil if free).
func (l *TPMCS) Holder() *cpu.Thread { return l.holder }

// QueueLength returns the number of queued waiters.
func (l *TPMCS) QueueLength() int { return len(l.queue) }

func (l *TPMCS) forEachSpinner(fn func(*cpu.Thread)) {
	for _, n := range l.queue {
		if n.t.Spinning() {
			fn(n.t)
		}
	}
}

// Acquire implements Lock.
func (l *TPMCS) Acquire(t *cpu.Thread) {
	l.AcquireManaged(t, nil)
}

// AcquireManaged acquires the lock, letting mgr observe and optionally
// abort the wait. It returns WaitGranted once the lock is held, or
// WaitAborted if mgr's abort succeeded.
func (l *TPMCS) AcquireManaged(t *cpu.Thread, mgr WaitManager) WaitStatus {
	t.Compute(l.env.Costs.Acquire)
	for {
		if l.holder == nil {
			// Fast path: free lock (queue may hold only removed
			// husks, cleaned lazily).
			if l.liveQueueLen() == 0 {
				l.holder = t
				l.guard.set(t)
				return WaitGranted
			}
		}
		n := &qnode{t: t}
		l.queue = append(l.queue, n)
		l.guard.markSpinner(t)
		if mgr != nil {
			mgr.BeginWait(t, func() bool { return l.tryAbort(n) })
		}
		res := t.SpinWait()
		if mgr != nil {
			mgr.EndWait(t)
		}
		switch res {
		case SpinGranted:
			return WaitGranted
		case SpinRemoved:
			// A releaser saw us preempted and unlinked us; retry now
			// that we are running again.
			continue
		case SpinAborted:
			return WaitAborted
		default:
			panic("tp-mcs: unexpected spin result")
		}
	}
}

// liveQueueLen counts nodes still actually waiting.
func (l *TPMCS) liveQueueLen() int {
	n := 0
	for _, q := range l.queue {
		if !q.removed && !q.aborted && !q.granted {
			n++
		}
	}
	return n
}

// tryAbort removes n from the queue if it is still waiting. Called from
// the load controller's slot-claim path.
func (l *TPMCS) tryAbort(n *qnode) bool {
	if n.granted || n.removed || n.aborted {
		return false
	}
	n.aborted = true
	l.unlink(n)
	n.t.SpinWake(SpinAborted)
	return true
}

func (l *TPMCS) unlink(n *qnode) {
	for i, q := range l.queue {
		if q == n {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return
		}
	}
}

// Release implements Lock. The releaser walks the queue from the head,
// removing descheduled waiters, and grants to the first running one. If
// every waiter is descheduled the lock is left free and all waiters are
// removed (they re-enqueue on wakeup).
func (l *TPMCS) Release(t *cpu.Thread) {
	if l.holder != t {
		panic("tp-mcs: release by non-holder")
	}
	t.Compute(l.env.Costs.Release)
	// Ownership is retained throughout the stale-node walk: the walk
	// consumes critical-path time (TPRemoval per node), and new
	// arrivals must keep queueing behind it rather than barging.
	for len(l.queue) > 0 {
		n := l.queue[0]
		l.queue = l.queue[1:]
		if n.aborted || n.removed {
			continue // stale husk
		}
		if !n.t.OnCPU() {
			// Time-published state says this waiter is descheduled:
			// remove it rather than handing it the lock. Reading the
			// published timestamp and splicing the node is a remote
			// cache miss on the critical path — stale-node walks are
			// what erodes TP-MCS throughput under overload.
			n.removed = true
			l.Removals++
			n.t.SpinWake(SpinRemoved)
			t.Compute(l.env.Costs.TPRemoval)
			continue
		}
		n.granted = true
		l.holder = n.t
		l.guard.set(n.t)
		l.env.M.K.After(l.env.M.Cfg.HandoffDelay, func() { n.t.SpinWake(SpinGranted) })
		return
	}
	l.holder = nil
	l.guard.set(nil)
}
