package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/locks"
	"repro/internal/sim"
)

// lcWorld wires a machine, a controller and an LC lock for tests.
type lcWorld struct {
	k   *sim.Kernel
	m   *cpu.Machine
	p   *cpu.Process
	env *locks.Env
	ctl *Controller
}

func newLCWorld(seed uint64, contexts int, opts Options) *lcWorld {
	k := sim.NewKernel(seed)
	m := cpu.NewMachine(k, cpu.Config{Contexts: contexts})
	p := m.NewProcess("app")
	env := locks.NewEnv(m)
	ctl := NewController(p, opts)
	return &lcWorld{k: k, m: m, p: p, env: env, ctl: ctl}
}

// spawnWorkers starts n lock/compute/release loop threads.
func (w *lcWorld) spawnWorkers(l locks.Lock, n int, cs, think time.Duration) *int {
	acquires := new(int)
	for i := 0; i < n; i++ {
		w.p.NewThread(fmt.Sprintf("w%d", i), func(t *cpu.Thread) {
			for {
				l.Acquire(t)
				*acquires++
				t.Compute(cs)
				l.Release(t)
				t.Compute(think)
			}
		})
	}
	return acquires
}

func TestControllerShedsOverload(t *testing.T) {
	// 4 contexts, 8 CPU-bound lock users: without LC, runnable stays 8;
	// the controller should bring runnable near 4 by parking spinners.
	w := newLCWorld(7, 4, Options{})
	w.ctl.Start()
	l := NewLCLock(w.env, w.ctl)
	acquires := w.spawnWorkers(l, 8, 3*time.Microsecond, 2*time.Microsecond)
	w.k.RunFor(400 * time.Millisecond)
	if w.ctl.Updates == 0 {
		t.Fatal("controller never updated")
	}
	if w.ctl.Buffer.Claims == 0 {
		t.Fatal("no spinner ever claimed a sleep slot despite 200% load")
	}
	// Time-averaged runnable load should be near the context count.
	lm := cpu.NewLoadMeter(w.p)
	w.k.RunFor(100 * time.Millisecond)
	load := lm.Read()
	if load > 5.5 {
		t.Fatalf("steady-state load = %.2f, want <= ~5 with LC active", load)
	}
	if load < 3.0 {
		t.Fatalf("steady-state load = %.2f, LC over-shed", load)
	}
	if *acquires == 0 {
		t.Fatal("no progress under load control")
	}
}

func TestControllerWakesOnUnderload(t *testing.T) {
	// Force sleepers via a manual target, then drop the target: the
	// sleepers must wake promptly (not wait for their 100ms timeout).
	w := newLCWorld(11, 4, Options{DisableSensor: true})
	w.ctl.Start()
	l := NewLCLock(w.env, w.ctl)
	w.spawnWorkers(l, 8, 3*time.Microsecond, 2*time.Microsecond)
	w.k.RunFor(20 * time.Millisecond)
	w.k.After(0, func() { w.ctl.ForceTarget(4) })
	w.k.RunFor(30 * time.Millisecond)
	if w.ctl.Buffer.Sleeping() < 3 {
		t.Fatalf("sleeping = %d, want ~4 after ForceTarget(4)", w.ctl.Buffer.Sleeping())
	}
	w.k.After(0, func() { w.ctl.ForceTarget(0) })
	// The unparked threads re-enter the run queue immediately, but the
	// buffer's W counter advances when they next run; give them a tick.
	w.k.RunFor(25 * time.Millisecond)
	if w.ctl.Buffer.Sleeping() != 0 {
		t.Fatalf("sleeping = %d after target drop, want 0", w.ctl.Buffer.Sleeping())
	}
	if w.ctl.Buffer.ControllerWakes == 0 {
		t.Fatal("no controller wakes recorded; sleepers must not rely on timeouts")
	}
	// Well before the 100ms sleep timeout: wakes were controller-driven.
	if w.k.Now() > sim.Time(100*time.Millisecond) {
		t.Fatal("test ran past the sleep timeout; assertion meaningless")
	}
}

func TestSleeperTimesOutWithoutController(t *testing.T) {
	// A sleeper whose slot is never cleared must wake after the 100ms
	// timeout (tick-quantized) and retry.
	w := newLCWorld(13, 4, Options{DisableSensor: true, SleepTimeout: 50 * time.Millisecond})
	w.ctl.Start()
	l := NewLCLock(w.env, w.ctl)
	w.spawnWorkers(l, 8, 3*time.Microsecond, 2*time.Microsecond)
	w.k.After(0, func() { w.ctl.ForceTarget(4) })
	w.k.RunFor(200 * time.Millisecond)
	if w.ctl.Buffer.TimeoutWakes == 0 {
		t.Fatal("no timeout wakes despite permanent overload target")
	}
}

func TestBumpTestResponse(t *testing.T) {
	// Figure 8 in miniature: with the sensor disabled, force sleep
	// targets in a pattern and verify the running-thread count tracks
	// each change quickly.
	const ctxs = 8
	w := newLCWorld(17, ctxs, Options{DisableSensor: true, SleepTimeout: time.Second})
	w.ctl.Start()
	l := NewLCLock(w.env, w.ctl)
	w.spawnWorkers(l, 12, 2*time.Microsecond, time.Microsecond)
	w.k.RunFor(20 * time.Millisecond)

	check := func(target int, wantSleep int) {
		w.k.After(0, func() { w.ctl.ForceTarget(target) })
		// Allow a couple of ticks: woken sleepers retire their slots
		// (W++) only once they run again.
		w.k.RunFor(25 * time.Millisecond)
		got := w.ctl.Buffer.Sleeping()
		if got != wantSleep {
			t.Fatalf("target %d: sleeping = %d, want %d", target, got, wantSleep)
		}
	}
	check(4, 4)
	check(8, 8)
	check(2, 2)
	check(6, 6)
	check(0, 0)
}

func TestClaimRaceGrantBeforeAbort(t *testing.T) {
	// If a spinner is granted the lock in the same instant the registry
	// tries to claim it, the claim must be surrendered (paper: "clears
	// the sleep slot it claimed and enters the critical section").
	// Exercised statistically: run a hot lock with a flapping target.
	w := newLCWorld(19, 2, Options{DisableSensor: true})
	w.ctl.Start()
	l := NewLCLock(w.env, w.ctl)
	acquires := w.spawnWorkers(l, 6, time.Microsecond, 0)
	flip := 0
	var flap func()
	flap = func() {
		flip++
		w.ctl.ForceTarget(flip % 5)
		w.k.After(500*time.Microsecond, flap)
	}
	w.k.After(time.Millisecond, flap)
	w.k.RunFor(200 * time.Millisecond)
	if *acquires < 1000 {
		t.Fatalf("progress stalled: %d acquires", *acquires)
	}
	// Buffer must be internally consistent at the end.
	b := w.ctl.Buffer
	if b.Sleeping() < 0 || b.Sleeping() > b.T+1 {
		t.Fatalf("buffer inconsistent: S=%d W=%d T=%d", b.S, b.W, b.T)
	}
}

func TestLCKeepsMutualExclusion(t *testing.T) {
	w := newLCWorld(23, 2, Options{})
	w.ctl.Start()
	l := NewLCLock(w.env, w.ctl)
	inCS, maxCS := 0, 0
	for i := 0; i < 6; i++ {
		w.p.NewThread(fmt.Sprintf("w%d", i), func(t *cpu.Thread) {
			for {
				l.Acquire(t)
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				t.Compute(2 * time.Microsecond)
				inCS--
				l.Release(t)
				t.Compute(3 * time.Microsecond)
			}
		})
	}
	w.k.RunFor(300 * time.Millisecond)
	if maxCS != 1 {
		t.Fatalf("mutual exclusion violated under load control: %d", maxCS)
	}
}

func TestControllerGlobalAcrossLocks(t *testing.T) {
	// One controller manages several locks: the most contended lock
	// donates the most sleepers, but the buffer is shared.
	w := newLCWorld(29, 4, Options{})
	w.ctl.Start()
	hot := NewLCLock(w.env, w.ctl)
	cold := NewLCLock(w.env, w.ctl)
	w.spawnWorkers(hot, 8, 4*time.Microsecond, time.Microsecond)
	w.spawnWorkers(cold, 2, time.Microsecond, 100*time.Microsecond)
	w.k.RunFor(300 * time.Millisecond)
	if w.ctl.Buffer.Claims == 0 {
		t.Fatal("no claims")
	}
	lm := cpu.NewLoadMeter(w.p)
	w.k.RunFor(100 * time.Millisecond)
	if load := lm.Read(); load > 6 {
		t.Fatalf("load %.2f not controlled with multiple locks", load)
	}
}

func TestNestedLockLimitation(t *testing.T) {
	// Paper §6.1.2: a thread holding lock A while spinning on lock B can
	// be put to sleep by load control, leaving A's waiters stuck behind
	// a sleeping holder. Verify the mechanism (a) does this, and (b)
	// recovers via the sleep timeout.
	w := newLCWorld(31, 2, Options{DisableSensor: true, SleepTimeout: 30 * time.Millisecond})
	w.ctl.Start()
	la := NewLCLock(w.env, w.ctl)
	lb := NewLCLock(w.env, w.ctl)
	// bHolder keeps B busy so the nested acquirer spins on B.
	w.p.NewThread("bHolder", func(t *cpu.Thread) {
		lb.Acquire(t)
		t.Compute(15 * time.Millisecond)
		lb.Release(t)
		t.Compute(100 * time.Millisecond)
	})
	var nestedSlept bool
	var aAcquired sim.Time
	w.p.NewThread("nested", func(t *cpu.Thread) {
		t.Compute(100 * time.Microsecond)
		la.Acquire(t)
		lb.Acquire(t) // spins here; load control may claim us
		lb.Release(t)
		la.Release(t)
	})
	w.p.NewThread("aWaiter", func(t *cpu.Thread) {
		t.Compute(200 * time.Microsecond)
		la.Acquire(t)
		aAcquired = w.k.Now()
		la.Release(t)
	})
	// Add CPU pressure and a sleep target so the nested spinner gets
	// claimed.
	w.p.NewThread("hog", func(t *cpu.Thread) { t.Compute(200 * time.Millisecond) })
	w.k.After(time.Millisecond, func() { w.ctl.ForceTarget(1) })
	w.k.RunFor(2 * time.Millisecond)
	nestedSlept = w.ctl.Buffer.Sleeping() > 0
	w.k.RunFor(250 * time.Millisecond)
	if !nestedSlept {
		t.Skip("nested spinner was not selected; construction did not trigger")
	}
	if aAcquired == 0 {
		t.Fatal("lock A's waiter never recovered")
	}
}

func TestControllerStops(t *testing.T) {
	w := newLCWorld(37, 2, Options{})
	w.ctl.Start()
	w.k.RunFor(50 * time.Millisecond)
	u := w.ctl.Updates
	w.ctl.Stop()
	w.k.RunFor(50 * time.Millisecond)
	if w.ctl.Updates > u+1 {
		t.Fatalf("controller kept updating after Stop: %d -> %d", u, w.ctl.Updates)
	}
}

func TestDeterministicLC(t *testing.T) {
	run := func() (int, uint64) {
		w := newLCWorld(99, 4, Options{})
		w.ctl.Start()
		l := NewLCLock(w.env, w.ctl)
		acq := w.spawnWorkers(l, 8, 3*time.Microsecond, 2*time.Microsecond)
		w.k.RunFor(150 * time.Millisecond)
		return *acq, w.ctl.Buffer.Claims
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a1, c1, a2, c2)
	}
}
