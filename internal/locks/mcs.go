package locks

import (
	"time"

	"repro/internal/cpu"
)

// qnode is a waiter's queue entry, shared by MCS, TP-MCS and the ticket
// lock models.
type qnode struct {
	t       *cpu.Thread
	granted bool
	removed bool
	aborted bool
}

// MCS is the classic queue-based spinlock: strict FIFO handoff, each
// waiter spins on its own node. Scalable, but every queued thread is
// effectively a lock holder: releasing to a preempted waiter stalls the
// lock until that waiter is scheduled again (paper §2.1).
type MCS struct {
	env    *Env
	holder *cpu.Thread
	queue  []*qnode
	guard  holderGuard
}

// NewMCS returns an MCS lock factory.
func NewMCS(env *Env) Lock {
	l := &MCS{env: env}
	l.guard = holderGuard{env: env, spinners: l.forEachSpinner}
	return l
}

// Name implements Lock.
func (l *MCS) Name() string { return "mcs" }

// Holder returns the current owner (nil if free).
func (l *MCS) Holder() *cpu.Thread { return l.holder }

// QueueLength returns the number of queued waiters.
func (l *MCS) QueueLength() int { return l.liveQueueLen() }

func (l *MCS) forEachSpinner(fn func(*cpu.Thread)) {
	for _, n := range l.queue {
		if n.t.Spinning() {
			fn(n.t)
		}
	}
}

// Acquire implements Lock.
func (l *MCS) Acquire(t *cpu.Thread) {
	l.AcquireManaged(t, nil)
}

// AcquireManaged acquires the lock, letting mgr observe and optionally
// abort the wait — the same protocol as TPMCS.AcquireManaged, enabling
// the paper's §5.4 ablation (load control over a plain MCS lock).
func (l *MCS) AcquireManaged(t *cpu.Thread, mgr WaitManager) WaitStatus {
	t.Compute(l.env.Costs.Acquire)
	for {
		if l.holder == nil && l.liveQueueLen() == 0 {
			l.holder = t
			l.guard.set(t)
			return WaitGranted
		}
		n := &qnode{t: t}
		l.queue = append(l.queue, n)
		l.guard.markSpinner(t)
		if mgr != nil {
			mgr.BeginWait(t, func() bool { return l.tryAbort(n) })
		}
		res := t.SpinWait()
		if mgr != nil {
			mgr.EndWait(t)
		}
		switch res {
		case SpinGranted:
			if !n.granted {
				panic("mcs: grant without node grant")
			}
			return WaitGranted
		case SpinAborted:
			return WaitAborted
		default:
			panic("mcs: unexpected spin result")
		}
	}
}

func (l *MCS) liveQueueLen() int {
	n := 0
	for _, q := range l.queue {
		if !q.aborted {
			n++
		}
	}
	return n
}

// tryAbort removes a still-waiting node (load-control slot claims).
func (l *MCS) tryAbort(n *qnode) bool {
	if n.granted || n.aborted {
		return false
	}
	n.aborted = true
	for i, q := range l.queue {
		if q == n {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	n.t.SpinWake(SpinAborted)
	return true
}

// Release implements Lock. Strict FIFO: the lock is handed to the head
// waiter even if it is preempted. The successor becomes the holder
// immediately; if it is off CPU the critical section cannot start until
// it is dispatched — the convoy mechanism.
func (l *MCS) Release(t *cpu.Thread) {
	if l.holder != t {
		panic("mcs: release by non-holder")
	}
	t.Compute(l.env.Costs.Release)
	for len(l.queue) > 0 {
		n := l.queue[0]
		l.queue = l.queue[1:]
		if n.aborted {
			continue // stale husk left by an abort
		}
		n.granted = true
		l.holder = n.t
		l.guard.set(n.t)
		l.env.M.K.After(l.env.M.Cfg.HandoffDelay, func() { n.t.SpinWake(SpinGranted) })
		return
	}
	l.holder = nil
	l.guard.set(nil)
}

// Ticket is a ticket lock: FIFO like MCS (so equally vulnerable to
// preempted waiters) but all waiters poll a shared now-serving counter,
// adding a small herd penalty proportional to the waiter count.
type Ticket struct {
	env    *Env
	holder *cpu.Thread
	queue  []*qnode
	guard  holderGuard
}

// NewTicket returns a ticket lock factory.
func NewTicket(env *Env) Lock {
	l := &Ticket{env: env}
	l.guard = holderGuard{env: env, spinners: l.forEachSpinner}
	return l
}

// Name implements Lock.
func (l *Ticket) Name() string { return "ticket" }

func (l *Ticket) forEachSpinner(fn func(*cpu.Thread)) {
	for _, n := range l.queue {
		if n.t.Spinning() {
			fn(n.t)
		}
	}
}

// Acquire implements Lock.
func (l *Ticket) Acquire(t *cpu.Thread) {
	t.Compute(l.env.Costs.Acquire)
	if l.holder == nil && len(l.queue) == 0 {
		l.holder = t
		l.guard.set(t)
		return
	}
	n := &qnode{t: t}
	l.queue = append(l.queue, n)
	l.guard.markSpinner(t)
	if t.SpinWait() != SpinGranted {
		panic("ticket: unexpected spin result")
	}
}

// Release implements Lock.
func (l *Ticket) Release(t *cpu.Thread) {
	if l.holder != t {
		panic("ticket: release by non-holder")
	}
	t.Compute(l.env.Costs.Release)
	if len(l.queue) == 0 {
		l.holder = nil
		l.guard.set(nil)
		return
	}
	n := l.queue[0]
	l.queue = l.queue[1:]
	n.granted = true
	l.holder = n.t
	l.guard.set(n.t)
	// Shared-counter polling: every waiter takes the coherence miss.
	delay := l.env.M.Cfg.HandoffDelay + time.Duration(len(l.queue))*l.env.Costs.HerdPenalty
	l.env.M.K.After(delay, func() { n.t.SpinWake(SpinGranted) })
}
