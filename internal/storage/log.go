package storage

import (
	"repro/internal/cpu"
	"repro/internal/locks"
)

// walLog models the write-ahead log: appends happen under a single
// log-buffer latch (a classic engine hot spot), and commit forces the
// log with an I/O whose latency is configurable — the paper's TPC-C
// setup forces 6ms "disk" waits that all proceed in parallel (a large
// disk array emulated over tmpfs), while TM-1's tmpfs commits are
// cheap.
type walLog struct {
	e     *Engine
	latch locks.Lock

	// Records counts appended log records; Forces counts commit I/Os.
	Records uint64
	Forces  uint64
	lsn     uint64
}

func newWALLog(e *Engine) *walLog {
	return &walLog{e: e, latch: e.cfg.Latch(e.env)}
}

// append adds one record under the log latch and returns its LSN.
func (l *walLog) append(th *cpu.Thread) uint64 {
	l.latch.Acquire(th)
	th.Compute(l.e.cfg.Costs.LogRec)
	l.lsn++
	lsn := l.lsn
	l.Records++
	l.latch.Release(th)
	return lsn
}

// force makes the committing thread wait out the log I/O. All forces
// proceed in parallel (independent I/O slots), like the paper's many-
// spindle emulation.
func (l *walLog) force(th *cpu.Thread) {
	if l.e.cfg.CommitLatency <= 0 {
		return
	}
	l.Forces++
	th.IO(l.e.cfg.CommitLatency)
}
