package experiments

import (
	"repro/internal/workload"
)

func init() { register("fig01", runFig01) }

// runFig01 reproduces Figure 1: TM-1 throughput versus offered load for
// the blocking OS mutex and the TP-MCS spinlock, with the ideal curve
// (linear to 100% load, flat beyond) for reference. The paper's shape:
// blocking collapses well before 100% load as handoffs start context-
// switching; spinning peaks at 100% then falls off a cliff from
// priority inversions.
func runFig01(cfg Config) *Figure {
	fig := &Figure{
		ID:     "fig01",
		Title:  "Weaknesses of blocking and spinning (TM-1 throughput vs load)",
		XLabel: "threads",
		YLabel: "throughput (txn/s)",
		Notes: []string{
			"Blocking = adaptive spin-then-block mutex; Spinning = TP-MCS",
		},
	}
	sweep := threadSweep(cfg)
	var peak float64
	for _, ls := range []lockSetup{pthreadSetup(), tpmcsSetup()} {
		s := Series{Name: map[string]string{"pthread": "Blocking", "tp-mcs": "Spinning"}[ls.name]}
		for _, n := range sweep {
			w := workload.NewWorld(cfg.Seed, cfg.Contexts)
			f := ls.prepare(w)
			b := workload.NewTM1(w, workload.TM1Config{
				Subscribers: cfg.Subscribers, Latch: f,
			})
			r := workload.Measure(w, b, ls.name, n, cfg.Warmup, cfg.Window)
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Throughput)
			if r.Throughput > peak {
				peak = r.Throughput
			}
		}
		fig.Series = append(fig.Series, s)
	}
	// Ideal: linear up to 100% load, flat thereafter, scaled to the
	// observed peak.
	ideal := Series{Name: "Ideal"}
	for _, n := range sweep {
		ideal.X = append(ideal.X, float64(n))
		y := peak
		if n < cfg.Contexts {
			y = peak * float64(n) / float64(cfg.Contexts)
		}
		ideal.Y = append(ideal.Y, y)
	}
	fig.Series = append(fig.Series, ideal)
	return fig
}
