// Package workload implements the paper's benchmark drivers (§4): a
// single-lock microbenchmark, the TM-1 (TATP) telecom workload, a
// simplified TPC-C, and a Raytrace-like irregular-parallelism workload.
// All drivers are parameterized over a lock factory so each can run
// under pthread-style mutexes, TP-MCS, load control, or any other
// primitive.
//
// Measurement follows the paper's protocol: client threads run
// continuously; the harness samples per-thread completion counters twice
// (after a warmup) and reports the difference, so startup and shutdown
// never pollute throughput.
package workload

import (
	"time"

	"repro/internal/cpu"
	"repro/internal/locks"
	"repro/internal/sim"
)

// World bundles the simulated machine pieces every driver needs.
type World struct {
	K   *sim.Kernel
	M   *cpu.Machine
	P   *cpu.Process
	Env *locks.Env
}

// NewWorld creates a machine with the given context count and one
// application process. The dispatcher serialization cost is enabled and
// scaled so that the machine's baseline one-switch-per-transaction
// regime consumes a modest fraction of dispatcher capacity, leaving the
// paper's relative headroom before scheduler saturation.
func NewWorld(seed uint64, contexts int) *World {
	k := sim.NewKernel(seed)
	m := cpu.NewMachine(k, cpu.Config{
		Contexts:       contexts,
		DispatchSerial: 4 * time.Microsecond / time.Duration(max(1, contexts)),
	})
	p := m.NewProcess("app")
	return &World{K: k, M: m, P: p, Env: locks.NewEnv(m)}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewWorldOn adds an application process + lock Env to an existing
// machine (for multi-process experiments).
func NewWorldOn(m *cpu.Machine, name string) *World {
	return &World{K: m.K, M: m, P: m.NewProcess(name), Env: locks.NewEnv(m)}
}

// Driver is a continuously running benchmark.
type Driver interface {
	// Start launches n client threads that run until the simulation
	// stops.
	Start(n int)
	// Completed returns the cumulative number of completed operations
	// (transactions, tiles, lock acquisitions — the driver's unit).
	Completed() uint64
	// Name identifies the workload.
	Name() string
}

// Result is one measured point.
type Result struct {
	Workload   string
	Lock       string
	Clients    int
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // ops per second
	// Switches and Preemptions are machine-wide deltas over the
	// measurement window.
	Switches    uint64
	Preemptions uint64
}

// Measure runs the paper's two-reading protocol on d: warm up, read,
// run the measurement window, read again.
func Measure(w *World, d Driver, lockName string, clients int, warmup, window time.Duration) Result {
	d.Start(clients)
	w.K.RunFor(warmup)
	ops0 := d.Completed()
	sw0, pr0 := w.M.Switches, w.M.Preemptions
	w.K.RunFor(window)
	ops1 := d.Completed()
	sw1, pr1 := w.M.Switches, w.M.Preemptions
	ops := ops1 - ops0
	return Result{
		Workload:    d.Name(),
		Lock:        lockName,
		Clients:     clients,
		Ops:         ops,
		Elapsed:     window,
		Throughput:  float64(ops) / window.Seconds(),
		Switches:    sw1 - sw0,
		Preemptions: pr1 - pr0,
	}
}
