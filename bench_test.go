// Package repro's benchmark harness: one benchmark per paper figure
// (regenerating the figure at reduced scale each iteration and reporting
// domain metrics), plus microbenchmarks of the real golc library and of
// the simulator itself.
//
// Figure benchmarks report two custom metrics where meaningful:
//
//	txn/s       simulated-workload throughput (the paper's y-axis)
//	simev/s     simulator event throughput (harness cost)
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/golc"
	"repro/internal/locks"
	"repro/internal/workload"
)

// benchCfg is the scale used by the figure benchmarks: small enough to
// iterate, large enough to preserve the shapes.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Warmup = 5 * time.Millisecond
	cfg.Window = 20 * time.Millisecond
	return cfg
}

// benchFigure runs one experiment per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig01BlockingVsSpinning(b *testing.B)  { benchFigure(b, "fig01") }
func BenchmarkFig03PrioInversion(b *testing.B)       { benchFigure(b, "fig03") }
func BenchmarkFig04SchedulerOverload(b *testing.B)   { benchFigure(b, "fig04") }
func BenchmarkFig05BackoffVariability(b *testing.B)  { benchFigure(b, "fig05") }
func BenchmarkFig06WorkloadVariability(b *testing.B) { benchFigure(b, "fig06") }
func BenchmarkFig08BumpTest(b *testing.B)            { benchFigure(b, "fig08") }
func BenchmarkFig09ContentionSweep(b *testing.B)     { benchFigure(b, "fig09") }
func BenchmarkFig10UpdateInterval(b *testing.B)      { benchFigure(b, "fig10") }
func BenchmarkFig11Applications(b *testing.B)        { benchFigure(b, "fig11") }
func BenchmarkFig12Interference(b *testing.B)        { benchFigure(b, "fig12") }
func BenchmarkAblationMCS(b *testing.B)              { benchFigure(b, "ablation-mcs") }
func BenchmarkAblationControl(b *testing.B)          { benchFigure(b, "ablation-control") }

// BenchmarkSimTM1 reports the simulated transaction rate and the
// simulator's own event throughput for the reference configuration.
func BenchmarkSimTM1(b *testing.B) {
	var txns uint64
	var events uint64
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		w := workload.NewWorld(42, 16)
		d := workload.NewTM1(w, workload.TM1Config{Subscribers: 2000})
		r := workload.Measure(w, d, "tp-mcs", 15, 5*time.Millisecond, 20*time.Millisecond)
		txns += r.Ops
		events += w.K.Stepped
		virtual += 25 * time.Millisecond
	}
	b.ReportMetric(float64(txns)/virtual.Seconds(), "txn/s")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simev/s")
}

// benchSimLock measures contended handoff cost per lock algorithm on
// the simulated machine (4 contexts, 8 threads, tiny critical section).
func benchSimLock(b *testing.B, f locks.Factory, lc bool) {
	var acquires uint64
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		w := workload.NewWorld(42, 4)
		ff := f
		if lc {
			ctl := core.NewController(w.P, core.Options{})
			ctl.Start()
			ff = core.Factory(ctl)
		}
		d := workload.NewMicro(w, ff)
		d.Delay = 2 * time.Microsecond
		r := workload.Measure(w, d, "bench", 8, 2*time.Millisecond, 10*time.Millisecond)
		acquires += r.Ops
		virtual += 10 * time.Millisecond
	}
	b.ReportMetric(float64(acquires)/virtual.Seconds(), "acquire/s")
}

func BenchmarkSimLockTATAS(b *testing.B)    { benchSimLock(b, locks.NewTATAS, false) }
func BenchmarkSimLockBackoff(b *testing.B)  { benchSimLock(b, locks.NewBackoff, false) }
func BenchmarkSimLockTicket(b *testing.B)   { benchSimLock(b, locks.NewTicket, false) }
func BenchmarkSimLockMCS(b *testing.B)      { benchSimLock(b, locks.NewMCS, false) }
func BenchmarkSimLockTPMCS(b *testing.B)    { benchSimLock(b, locks.NewTPMCS, false) }
func BenchmarkSimLockAdaptive(b *testing.B) { benchSimLock(b, locks.NewAdaptiveMutex, false) }
func BenchmarkSimLockBlocking(b *testing.B) { benchSimLock(b, locks.NewBlockingMutex, false) }
func BenchmarkSimLockLC(b *testing.B)       { benchSimLock(b, locks.NewTPMCS, true) }

// BenchmarkGolcMutexUncontended measures the real library's fast path.
func BenchmarkGolcMutexUncontended(b *testing.B) {
	ctl := golc.NewController(golc.Options{})
	ctl.Start()
	defer ctl.Stop()
	mu := golc.NewMutex(ctl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		mu.Unlock() //nolint:staticcheck // empty critical section is the benchmark
	}
}

// BenchmarkGolcMutexContended measures the real library under
// oversubscription (parallelism x8).
func BenchmarkGolcMutexContended(b *testing.B) {
	ctl := golc.NewController(golc.Options{})
	ctl.Start()
	defer ctl.Stop()
	mu := golc.NewMutex(ctl)
	shared := 0
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			shared++
			mu.Unlock()
		}
	})
	if shared == 0 {
		b.Fatal("no work done")
	}
}

// BenchmarkGolcVsSyncMutex compares against the standard library under
// the same contention for reference.
func BenchmarkGolcVsSyncMutex(b *testing.B) {
	var mu sync.Mutex
	shared := 0
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			shared++
			mu.Unlock()
		}
	})
	if shared == 0 {
		b.Fatal("no work done")
	}
}

// BenchmarkKernelEvents measures raw event-loop throughput.
func BenchmarkKernelEvents(b *testing.B) {
	w := workload.NewWorld(1, 1)
	n := 0
	var tick func()
	tick = func() {
		n++
		w.K.After(time.Microsecond, tick)
	}
	w.K.After(time.Microsecond, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.K.RunFor(time.Microsecond)
	}
	if n == 0 {
		b.Fatal("no events")
	}
}

// Example of regenerating a figure programmatically (also acts as a
// compile-checked usage snippet for the README).
func ExampleRun() {
	cfg := experiments.Quick()
	cfg.Warmup = 2 * time.Millisecond
	cfg.Window = 5 * time.Millisecond
	f, err := experiments.Run("ablation-control", cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(f.ID)
	// Output: ablation-control
}
