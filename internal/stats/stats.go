// Package stats provides the small statistics toolkit the experiment
// harnesses use: running moments, histograms with percentiles, and
// time-weighted series for load traces.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance online (Welford).
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the sample variance (0 for n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 for empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 for empty).
func (r *Running) Max() float64 { return r.max }

// CoV returns the coefficient of variation (stddev/mean), the paper's
// implicit variability metric in Figure 5 discussions.
func (r *Running) CoV() float64 {
	if r.mean == 0 {
		return 0
	}
	return r.Stddev() / math.Abs(r.mean)
}

// Sample is a stored set of observations supporting percentiles.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation; 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	pos := p / 100 * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// TimeSeries is a step function of float64 over int64 timestamps,
// recording (t, value) change points. It answers time-weighted means and
// can be resampled for plotting.
type TimeSeries struct {
	ts []int64
	vs []float64
}

// Record appends a change point; timestamps must be non-decreasing.
func (s *TimeSeries) Record(t int64, v float64) {
	if n := len(s.ts); n > 0 && t < s.ts[n-1] {
		panic("stats: time series timestamps must be non-decreasing")
	}
	// Collapse same-instant updates to the latest value.
	if n := len(s.ts); n > 0 && s.ts[n-1] == t {
		s.vs[n-1] = v
		return
	}
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
}

// Len returns the number of change points.
func (s *TimeSeries) Len() int { return len(s.ts) }

// At returns the value in effect at time t (0 before the first point).
func (s *TimeSeries) At(t int64) float64 {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] > t }) - 1
	if i < 0 {
		return 0
	}
	return s.vs[i]
}

// WeightedMean returns the time-weighted mean over [from, to).
func (s *TimeSeries) WeightedMean(from, to int64) float64 {
	if to <= from || len(s.ts) == 0 {
		return 0
	}
	var sum float64
	cur := s.At(from)
	last := from
	for i, t := range s.ts {
		if t <= from {
			continue
		}
		if t >= to {
			break
		}
		sum += cur * float64(t-last)
		cur = s.vs[i]
		last = t
	}
	sum += cur * float64(to-last)
	return sum / float64(to-from)
}

// Resample returns n equally spaced (t, value) points over [from, to].
func (s *TimeSeries) Resample(from, to int64, n int) ([]int64, []float64) {
	if n < 2 {
		n = 2
	}
	ts := make([]int64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		t := from + int64(float64(to-from)*float64(i)/float64(n-1))
		ts[i] = t
		vs[i] = s.At(t)
	}
	return ts, vs
}

// MinMax returns the extremes of the recorded values.
func (s *TimeSeries) MinMax() (lo, hi float64) {
	if len(s.vs) == 0 {
		return 0, 0
	}
	lo, hi = s.vs[0], s.vs[0]
	for _, v := range s.vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Histogram is a fixed-width bucket histogram over [lo, hi).
type Histogram struct {
	lo, hi  float64
	buckets []int
	under   int
	over    int
	n       int
}

// NewHistogram builds a histogram with nb buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if hi <= lo || nb <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, nb)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i == len(h.buckets) {
			i--
		}
		h.buckets[i]++
	}
}

// N returns the total count.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// String renders a compact ASCII summary.
func (h *Histogram) String() string {
	out := ""
	w := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		out += fmt.Sprintf("[%8.3g,%8.3g) %d\n", h.lo+float64(i)*w, h.lo+float64(i+1)*w, c)
	}
	return out
}
