// Package policyregok holds clean fixtures for the policyreg analyzer:
// unique, unreserved names registered at init time (an init func, a
// package-level var initializer, or main) produce no findings.
package policyregok

import (
	"context"

	"repro/internal/golc"
	lcrt "repro/internal/golc/runtime"
)

type basePolicy struct{}

func (basePolicy) Wait(ctx context.Context, h *lcrt.Handle, a golc.Acquire) error {
	for !a.Try() {
	}
	return nil
}

type fromInit struct{ basePolicy }
type fromVar struct{ basePolicy }
type fromMain struct{ basePolicy }

func (fromInit) Name() string { return "fixture-init" }
func (fromVar) Name() string  { return "fixture-var" }
func (fromMain) Name() string { return "fixture-main" }

func init() {
	_ = golc.RegisterPolicy(fromInit{})
}

var _ = golc.RegisterPolicy(fromVar{})

func main() {
	_ = golc.RegisterPolicy(fromMain{})
}
