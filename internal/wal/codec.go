package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/kv"
)

// On-disk framing. Every record in a segment file — and the single
// payload of a checkpoint file — is one frame:
//
//	u32  payload length (little-endian)
//	u32  CRC-32 (IEEE) of the payload
//	payload
//
// A frame whose length runs past the end of the file is a torn tail
// (the process died mid-write); a frame whose CRC does not match is
// corruption. Recovery treats both the same way: the log ends at the
// last frame that verifies, and everything after it is truncated.
//
// A redo-record payload is one committed write-set:
//
//	u64  LSN
//	u32  write count
//	per write: u8 delete flag, u32 key len, key, u32 value len, value
//
// LSNs are assigned contiguously from 1 by the staging latch, so a
// valid log is a gapless ascending LSN sequence; recovery uses that as
// an extra integrity check on top of the CRCs.
const (
	frameHeader = 8
	// maxFrame caps a frame's declared payload length. A torn or
	// corrupt length field is random bytes; without a cap, recovery
	// would trust it and try to allocate gigabytes.
	maxFrame = 1 << 28
)

var crcTable = crc32.IEEETable

// recordSize returns the encoded frame size of a write-set record.
func recordSize(batch []kv.Write) int {
	n := frameHeader + 8 + 4
	for _, w := range batch {
		n += 1 + 4 + len(w.Key) + 4
		if !w.Delete {
			n += len(w.Value)
		}
	}
	return n
}

// appendRecord appends one framed redo record to dst and returns the
// extended slice. Deletes encode an empty value regardless of w.Value.
func appendRecord(dst []byte, lsn uint64, batch []kv.Write) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, recordSize(batch))...)
	p := dst[off+frameHeader:]
	binary.LittleEndian.PutUint64(p[0:], lsn)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(batch)))
	o := 12
	for _, w := range batch {
		if w.Delete {
			p[o] = 1
		} else {
			p[o] = 0
		}
		o++
		binary.LittleEndian.PutUint32(p[o:], uint32(len(w.Key)))
		o += 4
		o += copy(p[o:], w.Key)
		v := w.Value
		if w.Delete {
			v = ""
		}
		binary.LittleEndian.PutUint32(p[o:], uint32(len(v)))
		o += 4
		o += copy(p[o:], v)
	}
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(p)))
	binary.LittleEndian.PutUint32(dst[off+4:], crc32.Checksum(p, crcTable))
	return dst
}

// nextFrame extracts the first frame's payload from b. ok=false with
// err=nil means b is empty (clean end of log); err non-nil means the
// frame is torn or corrupt and the log ends here.
func nextFrame(b []byte) (payload, rest []byte, ok bool, err error) {
	if len(b) == 0 {
		return nil, nil, false, nil
	}
	if len(b) < frameHeader {
		return nil, nil, false, fmt.Errorf("torn frame header: %d trailing bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxFrame {
		return nil, nil, false, fmt.Errorf("frame length %d exceeds cap %d: corrupt header", n, maxFrame)
	}
	if len(b) < frameHeader+int(n) {
		return nil, nil, false, fmt.Errorf("torn frame: header declares %d payload bytes, %d present", n, len(b)-frameHeader)
	}
	payload = b[frameHeader : frameHeader+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, nil, false, fmt.Errorf("frame CRC mismatch: stored %08x, computed %08x", want, got)
	}
	return payload, b[frameHeader+int(n):], true, nil
}

// decodeRecord decodes a redo-record payload produced by appendRecord.
func decodeRecord(p []byte) (lsn uint64, batch []kv.Write, err error) {
	if len(p) < 12 {
		return 0, nil, fmt.Errorf("record payload too short: %d bytes", len(p))
	}
	lsn = binary.LittleEndian.Uint64(p)
	count := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	batch = make([]kv.Write, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 5 {
			return 0, nil, fmt.Errorf("record truncated at write %d/%d", i, count)
		}
		del := p[0] == 1
		klen := int(binary.LittleEndian.Uint32(p[1:]))
		p = p[5:]
		if len(p) < klen+4 {
			return 0, nil, fmt.Errorf("record key truncated at write %d/%d", i, count)
		}
		key := string(p[:klen])
		vlen := int(binary.LittleEndian.Uint32(p[klen:]))
		p = p[klen+4:]
		if len(p) < vlen {
			return 0, nil, fmt.Errorf("record value truncated at write %d/%d", i, count)
		}
		batch = append(batch, kv.Write{Key: key, Value: string(p[:vlen]), Delete: del})
		p = p[vlen:]
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("record has %d trailing bytes", len(p))
	}
	return lsn, batch, nil
}

// Checkpoint files are ckptMagic followed by one frame whose payload
// is the store image the log can be replayed on top of:
//
//	u64  checkpoint LSN (every record with LSN ≤ this is reflected)
//	u64  entry count
//	per entry: u32 key len, key, u32 value len, value
var ckptMagic = []byte("LCKP")

// encodeCheckpoint builds a complete checkpoint file image.
func encodeCheckpoint(lsn uint64, entries []kv.KV) []byte {
	n := 8 + 8
	for _, e := range entries {
		n += 4 + len(e.Key) + 4 + len(e.Value)
	}
	p := make([]byte, n)
	binary.LittleEndian.PutUint64(p, lsn)
	binary.LittleEndian.PutUint64(p[8:], uint64(len(entries)))
	o := 16
	for _, e := range entries {
		binary.LittleEndian.PutUint32(p[o:], uint32(len(e.Key)))
		o += 4
		o += copy(p[o:], e.Key)
		binary.LittleEndian.PutUint32(p[o:], uint32(len(e.Value)))
		o += 4
		o += copy(p[o:], e.Value)
	}
	out := make([]byte, 0, len(ckptMagic)+frameHeader+len(p))
	out = append(out, ckptMagic...)
	var h [frameHeader]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(len(p)))
	binary.LittleEndian.PutUint32(h[4:], crc32.Checksum(p, crcTable))
	out = append(out, h[:]...)
	return append(out, p...)
}

// decodeCheckpoint parses and verifies a checkpoint file image.
func decodeCheckpoint(b []byte) (lsn uint64, entries []kv.KV, err error) {
	if len(b) < len(ckptMagic) || string(b[:len(ckptMagic)]) != string(ckptMagic) {
		return 0, nil, fmt.Errorf("checkpoint magic missing")
	}
	p, rest, ok, err := nextFrame(b[len(ckptMagic):])
	if err != nil || !ok {
		if err == nil {
			err = fmt.Errorf("checkpoint has no payload frame")
		}
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("checkpoint has %d trailing bytes", len(rest))
	}
	if len(p) < 16 {
		return 0, nil, fmt.Errorf("checkpoint payload too short: %d bytes", len(p))
	}
	lsn = binary.LittleEndian.Uint64(p)
	count := binary.LittleEndian.Uint64(p[8:])
	p = p[16:]
	entries = make([]kv.KV, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) < 4 {
			return 0, nil, fmt.Errorf("checkpoint truncated at entry %d/%d", i, count)
		}
		klen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if len(p) < klen+4 {
			return 0, nil, fmt.Errorf("checkpoint key truncated at entry %d/%d", i, count)
		}
		key := string(p[:klen])
		vlen := int(binary.LittleEndian.Uint32(p[klen:]))
		p = p[klen+4:]
		if len(p) < vlen {
			return 0, nil, fmt.Errorf("checkpoint value truncated at entry %d/%d", i, count)
		}
		entries = append(entries, kv.KV{Key: key, Value: string(p[:vlen])})
		p = p[vlen:]
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("checkpoint has %d trailing payload bytes", len(p))
	}
	return lsn, entries, nil
}
