// Command lcbench drives the real (non-simulated) load-controlled mutex
// from internal/golc on the host machine: N goroutines hammer one lock
// with a configurable critical section and think time, with or without
// load control, and the tool reports throughput.
//
// Usage:
//
//	lcbench -goroutines 64 -cs 500ns -think 2us -duration 3s -lc
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/golc"
)

func main() {
	var (
		n        = flag.Int("goroutines", 4*runtime.GOMAXPROCS(0), "worker goroutines")
		cs       = flag.Duration("cs", 500*time.Nanosecond, "critical section length")
		think    = flag.Duration("think", 2*time.Microsecond, "think time between acquires")
		duration = flag.Duration("duration", 3*time.Second, "measurement duration")
		useLC    = flag.Bool("lc", true, "enable load control")
	)
	flag.Parse()

	var ctl *golc.Controller
	var mu golc.Locker
	if *useLC {
		ctl = golc.NewController(golc.Options{})
		ctl.Start()
		defer ctl.Stop()
		mu = golc.NewMutex(ctl)
	} else {
		mu = golc.NewSpinMutex()
	}

	var ops atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				spinFor(*cs)
				mu.Unlock()
				ops.Add(1)
				spinFor(*think)
			}
		}()
	}

	time.Sleep(*duration / 4) // warmup
	start := ops.Load()
	t0 := time.Now()
	time.Sleep(*duration)
	delta := ops.Load() - start
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()

	mode := "spin"
	if *useLC {
		mode = "load-control"
	}
	fmt.Printf("mode=%s goroutines=%d gomaxprocs=%d cs=%v think=%v\n",
		mode, *n, runtime.GOMAXPROCS(0), *cs, *think)
	fmt.Printf("throughput: %.0f acquires/s (%d in %v)\n",
		float64(delta)/elapsed.Seconds(), delta, elapsed.Round(time.Millisecond))
	if ctl != nil {
		s := ctl.Stats()
		fmt.Printf("controller: updates=%d claims=%d wakes=%d timeouts=%d\n",
			s.Updates, s.Claims, s.ControllerWakes, s.TimeoutWakes)
	}
}

// spinFor busy-waits for roughly d (calibrated coarsely; this is a
// benchmark load generator, not a timer).
func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
