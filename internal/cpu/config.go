// Package cpu models a multiprocessor machine with a time-sharing OS
// scheduler on top of the sim kernel.
//
// The model reproduces the scheduling behaviour that the paper's
// pathologies depend on: a fixed number of hardware contexts, a global
// FIFO run queue with round-robin time slicing, a periodic scheduler
// tick at which quanta are enforced and park timeouts are processed,
// context-switch costs on every dispatch, precise (interrupt-driven)
// I/O completions and unparks, and per-process microstate accounting
// whose read cost grows with the thread count.
//
// Threads are written as ordinary sequential code (sim.Proc) calling
// Compute, SpinWait, Park, IO and Yield; the scheduler preempts them
// transparently, including in the middle of a Compute or a spin — which
// is exactly how preempted lock holders and preempted spinners arise.
package cpu

import "time"

// Config holds machine and scheduler timing parameters. The defaults
// approximate the Sun T5220 / Solaris 10 setup from the paper closely
// enough to reproduce every figure's shape.
type Config struct {
	// Contexts is the number of hardware contexts (the paper's machine
	// has 64).
	Contexts int

	// Tick is the scheduler clock tick period. Quanta are enforced and
	// park timeouts processed only at ticks (10ms on Solaris).
	Tick time.Duration

	// Quantum is the time slice length. A running thread whose slice
	// has expired is preempted at the next tick if other threads wait.
	Quantum time.Duration

	// SwitchCost is charged on a context for every dispatch of a
	// different thread (the paper: blocking adds 10-15µs to the
	// critical path via two context switches).
	SwitchCost time.Duration

	// ResumeCost is charged when a context re-dispatches the same
	// thread it last ran (warm switch).
	ResumeCost time.Duration

	// HandoffDelay is the time for a spinning waiter to observe a lock
	// release (1-2 cache miss latencies).
	HandoffDelay time.Duration

	// YieldCost is the syscall overhead of sched_yield.
	YieldCost time.Duration

	// AccountingBaseCost and AccountingPerThread model the microstate
	// accounting read: Solaris traverses every thread in the process,
	// so cost grows linearly with thread count and the read serializes
	// scheduler operations (paper §5.3, §6.2.2).
	AccountingBaseCost      time.Duration
	AccountingPerThreadCost time.Duration

	// DispatchSerial is the serialized dispatcher cost per dispatch
	// operation (the OS run-queue lock): dispatches queue behind each
	// other machine-wide. This is what "saturates the OS scheduler"
	// when blocking primitives context-switch on every handoff
	// (Figure 4). Zero disables the effect (unit-test machines);
	// workload worlds enable it scaled to machine size.
	DispatchSerial time.Duration

	// DisableWakePreemption turns off wakeup preemption. By default
	// (false), quantum accounting is cumulative across voluntary
	// blocks, like Solaris TS ts_timeleft: a thread that keeps blocking
	// before its quantum expires eventually exhausts it anyway, and a
	// waking thread finding no idle context immediately preempts an
	// expired running thread. This is the mechanism that catches lock
	// holders mid-critical-section on loaded machines and produces the
	// paper's priority inversions; without it, frequently-blocking
	// workloads would never lose the CPU involuntarily.
	DisableWakePreemption bool
}

// DefaultConfig returns the Niagara-II-like parameters used throughout
// the reproduction.
func DefaultConfig() Config {
	return Config{
		Contexts:                64,
		Tick:                    10 * time.Millisecond,
		Quantum:                 10 * time.Millisecond,
		SwitchCost:              12 * time.Microsecond,
		ResumeCost:              3 * time.Microsecond,
		HandoffDelay:            250 * time.Nanosecond,
		YieldCost:               2 * time.Microsecond,
		AccountingBaseCost:      2 * time.Microsecond,
		AccountingPerThreadCost: 300 * time.Nanosecond,
	}
}

// withDefaults fills zero fields from DefaultConfig so tests can
// override only what they care about.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Contexts == 0 {
		c.Contexts = d.Contexts
	}
	if c.Tick == 0 {
		c.Tick = d.Tick
	}
	if c.Quantum == 0 {
		c.Quantum = d.Quantum
	}
	if c.SwitchCost == 0 {
		c.SwitchCost = d.SwitchCost
	}
	if c.ResumeCost == 0 {
		c.ResumeCost = d.ResumeCost
	}
	if c.HandoffDelay == 0 {
		c.HandoffDelay = d.HandoffDelay
	}
	if c.YieldCost == 0 {
		c.YieldCost = d.YieldCost
	}
	if c.AccountingBaseCost == 0 {
		c.AccountingBaseCost = d.AccountingBaseCost
	}
	if c.AccountingPerThreadCost == 0 {
		c.AccountingPerThreadCost = d.AccountingPerThreadCost
	}
	return c
}
