package cpu

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCumulativeQuantumExhaustsAcrossBlocks(t *testing.T) {
	// A thread that computes 1ms then does I/O, repeatedly, never has a
	// long slice — but its cumulative quantum must still expire, making
	// it a wake-preemption victim once a waker arrives.
	k := sim.NewKernel(1)
	m := NewMachine(k, Config{Contexts: 1})
	p := m.NewProcess("p")
	p.NewThread("blocky", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Compute(time.Millisecond)
			th.IO(10 * time.Microsecond)
		}
	})
	// A second thread that wakes periodically: its wakeups trigger
	// wake-preemption once blocky's cumulative quantum (10ms) is gone.
	p.NewThread("waker", func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.Compute(100 * time.Microsecond)
			th.IO(2 * time.Millisecond)
		}
	})
	k.RunFor(150 * time.Millisecond)
	if m.Preemptions == 0 {
		t.Fatal("cumulative quantum never triggered a preemption despite constant blocking")
	}
}

func TestWakePreemptionDisabled(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMachine(k, Config{Contexts: 1, DisableWakePreemption: true})
	p := m.NewProcess("p")
	p.NewThread("blocky", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Compute(time.Millisecond)
			th.IO(10 * time.Microsecond)
		}
	})
	p.NewThread("waker", func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.Compute(100 * time.Microsecond)
			th.IO(2 * time.Millisecond)
		}
	})
	k.RunFor(150 * time.Millisecond)
	// Tick-based quantum preemption can still fire (runq non-empty +
	// expired quantum at a tick), but wakeups must not preempt: with
	// both threads blocking frequently, preemptions should be rare.
	if m.Preemptions > 5 {
		t.Fatalf("%d preemptions with wake preemption disabled", m.Preemptions)
	}
}

func TestQuantumReplenishedAfterPreemption(t *testing.T) {
	// After an involuntary preemption the quantum resets: a thread must
	// not be immediately re-victimized on redispatch.
	k := sim.NewKernel(1)
	m := NewMachine(k, Config{Contexts: 1})
	p := m.NewProcess("p")
	a := p.NewThread("a", func(th *Thread) { th.Compute(100 * time.Millisecond) })
	p.NewThread("b", func(th *Thread) { th.Compute(100 * time.Millisecond) })
	k.RunFor(300 * time.Millisecond)
	if a.timeleft <= 0 {
		t.Fatalf("thread left with exhausted quantum: %v", a.timeleft)
	}
	// Round-robin sharing: both threads must finish in a bounded time.
	if !a.Done() {
		t.Fatal("thread a never finished")
	}
}

func TestDispatcherSerializationDelaysBursts(t *testing.T) {
	// With dispatcher serialization, a burst of simultaneous wakeups is
	// spread out; without, they dispatch in parallel.
	run := func(serial time.Duration) sim.Time {
		k := sim.NewKernel(1)
		m := NewMachine(k, Config{Contexts: 16, DispatchSerial: serial})
		p := m.NewProcess("p")
		var last sim.Time
		for i := 0; i < 16; i++ {
			p.NewThread("w", func(th *Thread) {
				th.IO(time.Millisecond) // all wake at the same instant
				th.Compute(10 * time.Microsecond)
				last = k.Now()
			})
		}
		k.RunFor(100 * time.Millisecond)
		return last
	}
	fast := run(0)
	slow := run(2 * time.Microsecond)
	if slow <= fast {
		t.Fatalf("serialization had no effect: %v vs %v",
			time.Duration(fast), time.Duration(slow))
	}
	// 16 dispatches x 2µs = at least 30µs of extra serialized delay on
	// the last one.
	if slow-fast < sim.Time(20*time.Microsecond) {
		t.Fatalf("serialization too weak: delta %v", time.Duration(slow-fast))
	}
}

func TestAccountingReadStallsDispatch(t *testing.T) {
	// A measurement with a large cost must delay subsequent dispatches
	// (the §6.2.2 kernel serialization).
	k := sim.NewKernel(1)
	m := NewMachine(k, Config{
		Contexts:                2,
		AccountingBaseCost:      200 * time.Microsecond,
		AccountingPerThreadCost: time.Nanosecond,
	})
	p := m.NewProcess("p")
	reader := p.NewThread("reader", func(th *Thread) {
		th.Compute(time.Microsecond)
		m.ChargeAccountingRead(th, p)
	})
	_ = reader
	var started sim.Time
	k.After(50*time.Microsecond, func() {
		p.NewThread("late", func(th *Thread) {
			started = k.Now()
			th.Compute(time.Microsecond)
		})
	})
	k.RunFor(10 * time.Millisecond)
	// The late thread becomes runnable at 50µs with an idle context,
	// but its dispatch is stalled behind the accounting read (which
	// runs from ~13µs to ~213µs).
	if started < sim.Time(200*time.Microsecond) {
		t.Fatalf("dispatch not stalled by accounting read: started at %v",
			time.Duration(started))
	}
}

func TestTimedParkSetCleanedUp(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMachine(k, Config{Contexts: 2})
	p := m.NewProcess("p")
	for i := 0; i < 10; i++ {
		p.NewThread("w", func(th *Thread) {
			for j := 0; j < 5; j++ {
				th.Park(time.Millisecond)
			}
		})
	}
	k.RunFor(time.Second)
	if len(m.sched.timedParked) != 0 {
		t.Fatalf("timedParked leak: %d entries", len(m.sched.timedParked))
	}
}

func TestUnparkBeatsTimeout(t *testing.T) {
	// Unpark just before the tick that would time the park out: the
	// reason must be WakeSignal, and no double-wake may occur.
	k := sim.NewKernel(1)
	m := NewMachine(k, Config{Contexts: 2})
	p := m.NewProcess("p")
	var reasons []WakeReason
	th := p.NewThread("sleeper", func(th *Thread) {
		reasons = append(reasons, th.Park(5*time.Millisecond))
		reasons = append(reasons, th.Park(5*time.Millisecond))
	})
	k.After(sim.Duration(10*time.Millisecond)-1, func() { th.Unpark() })
	k.RunFor(time.Second)
	if len(reasons) != 2 {
		t.Fatalf("parks = %d, want 2", len(reasons))
	}
	if reasons[0] != WakeSignal {
		t.Fatalf("first park reason = %v, want WakeSignal", reasons[0])
	}
	if reasons[1] != WakeTimeout {
		t.Fatalf("second park reason = %v, want WakeTimeout", reasons[1])
	}
}

func TestRunnableNeverNegative(t *testing.T) {
	k := sim.NewKernel(7)
	m := NewMachine(k, Config{Contexts: 2})
	p := m.NewProcess("p")
	m.Observe(func(pp *Process, r int) {
		if r < 0 {
			t.Fatalf("negative runnable count: %d", r)
		}
	})
	for i := 0; i < 6; i++ {
		r := k.Rand().Fork()
		p.NewThread("w", func(th *Thread) {
			for j := 0; j < 30; j++ {
				switch r.Intn(4) {
				case 0:
					th.Compute(time.Duration(r.Intn(int(time.Millisecond))))
				case 1:
					th.IO(time.Duration(r.Intn(int(time.Millisecond))))
				case 2:
					th.Park(time.Duration(r.Intn(int(5 * time.Millisecond))))
				case 3:
					th.Yield()
				}
			}
		})
	}
	k.RunFor(2 * time.Second)
}

func TestContextNeverRunsTwoThreads(t *testing.T) {
	// Structural invariant: at any event boundary, each thread is on at
	// most one context and each context holds at most one thread.
	k := sim.NewKernel(9)
	m := NewMachine(k, Config{Contexts: 3})
	p := m.NewProcess("p")
	for i := 0; i < 9; i++ {
		r := k.Rand().Fork()
		p.NewThread("w", func(th *Thread) {
			for j := 0; j < 50; j++ {
				th.Compute(time.Duration(r.Intn(int(500 * time.Microsecond))))
				if r.Intn(3) == 0 {
					th.IO(time.Duration(r.Intn(int(time.Millisecond))))
				}
			}
		})
	}
	check := func() {
		seen := map[*Thread]int{}
		for _, c := range m.ctxs {
			if c.thread != nil {
				seen[c.thread]++
				if seen[c.thread] > 1 {
					t.Fatal("thread on two contexts")
				}
				if c.thread.ctx != c {
					t.Fatal("thread/context disagree")
				}
			}
		}
	}
	for i := 0; i < 200; i++ {
		k.RunFor(500 * time.Microsecond)
		check()
	}
}
