package experiments

import (
	"repro/internal/workload"
)

func init() { register("fig04", runFig04) }

// runFig04 reproduces Figure 4: TM-1 under the adaptive OS mutex —
// throughput and context-switch rate versus client count. The paper's
// shape: below a knee the mutex never blocks (switch rate tracks the
// commit-I/O rate); past it waiters exhaust their spin patience and the
// switch rate climbs until every handoff context-switches, dragging
// throughput down.
func runFig04(cfg Config) *Figure {
	fig := &Figure{
		ID:     "fig04",
		Title:  "Blocking: scheduler overload (TM-1 + adaptive mutex)",
		XLabel: "threads",
		YLabel: "txn/s | switches/s",
	}
	tput := Series{Name: "Throughput"}
	sw := Series{Name: "SwitchRate"}
	for _, n := range threadSweep(cfg) {
		w := workload.NewWorld(cfg.Seed, cfg.Contexts)
		b := workload.NewTM1(w, workload.TM1Config{
			Subscribers: cfg.Subscribers,
			Latch:       pthreadSetup().prepare(w),
		})
		r := workload.Measure(w, b, "pthread", n, cfg.Warmup, cfg.Window)
		tput.X = append(tput.X, float64(n))
		tput.Y = append(tput.Y, r.Throughput)
		sw.X = append(sw.X, float64(n))
		sw.Y = append(sw.Y, float64(r.Switches)/cfg.Window.Seconds())
	}
	fig.Series = []Series{tput, sw}
	return fig
}
