package locks

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// harness runs n threads that repeatedly acquire a single lock, hold it
// for csLen, and think for delay, checking mutual exclusion throughout.
type harness struct {
	k   *sim.Kernel
	m   *cpu.Machine
	p   *cpu.Process
	env *Env

	inCS     int
	maxInCS  int
	acquires int
}

func newHarness(seed uint64, contexts int) *harness {
	k := sim.NewKernel(seed)
	m := cpu.NewMachine(k, cpu.Config{Contexts: contexts})
	p := m.NewProcess("bench")
	return &harness{k: k, m: m, p: p, env: NewEnv(m)}
}

// run starts n worker threads on lock l and simulates for dur.
func (h *harness) run(l Lock, n int, csLen, delay, dur time.Duration) {
	for i := 0; i < n; i++ {
		rng := h.k.Rand().Fork()
		h.p.NewThread(fmt.Sprintf("w%d", i), func(t *cpu.Thread) {
			for {
				l.Acquire(t)
				h.inCS++
				if h.inCS > h.maxInCS {
					h.maxInCS = h.inCS
				}
				h.acquires++
				t.Compute(csLen)
				h.inCS--
				l.Release(t)
				t.Compute(delay + time.Duration(rng.Intn(1000)))
			}
		})
	}
	h.k.RunFor(dur)
}

var allFactories = []struct {
	name string
	f    Factory
}{
	{"tatas", NewTATAS},
	{"backoff", NewBackoff},
	{"ticket", NewTicket},
	{"mcs", NewMCS},
	{"tp-mcs", NewTPMCS},
	{"adaptive", NewAdaptiveMutex},
	{"blocking", NewBlockingMutex},
	{"spin-then-yield", NewSpinThenYield},
}

func TestMutualExclusionAllLocks(t *testing.T) {
	for _, tc := range allFactories {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(7, 4)
			l := tc.f(h.env)
			h.run(l, 8, 2*time.Microsecond, 5*time.Microsecond, 50*time.Millisecond)
			if h.maxInCS != 1 {
				t.Fatalf("%s: %d threads in critical section at once", l.Name(), h.maxInCS)
			}
			if h.acquires == 0 {
				t.Fatalf("%s: no acquires completed", l.Name())
			}
		})
	}
}

func TestMutualExclusionUnderOverload(t *testing.T) {
	// More threads than contexts: preemption hits lock holders and
	// spinners; exclusion must still hold and progress continue.
	for _, tc := range allFactories {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(11, 2)
			l := tc.f(h.env)
			h.run(l, 6, 3*time.Microsecond, 10*time.Microsecond, 80*time.Millisecond)
			if h.maxInCS != 1 {
				t.Fatalf("%s: exclusion violated under overload", l.Name())
			}
			if h.acquires < 100 {
				t.Fatalf("%s: only %d acquires under overload (livelock?)", l.Name(), h.acquires)
			}
		})
	}
}

func TestUncontendedAcquireIsCheap(t *testing.T) {
	for _, tc := range allFactories {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(3, 4)
			l := tc.f(h.env)
			var elapsed time.Duration
			h.p.NewThread("solo", func(th *cpu.Thread) {
				th.Compute(time.Microsecond)
				start := h.k.Now()
				for i := 0; i < 100; i++ {
					l.Acquire(th)
					l.Release(th)
				}
				elapsed = time.Duration(h.k.Now() - start)
			})
			h.k.RunFor(time.Second)
			// 100 uncontended pairs must cost well under a context
			// switch each.
			if elapsed > 100*5*time.Microsecond {
				t.Fatalf("%s: uncontended 100 pairs took %v", l.Name(), elapsed)
			}
		})
	}
}

func TestFIFOOrderMCS(t *testing.T) {
	// With ample contexts (no preemption), MCS must grant in arrival
	// order.
	h := newHarness(5, 16)
	l := NewMCS(h.env)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		h.p.NewThread(fmt.Sprintf("w%d", i), func(t *cpu.Thread) {
			// Stagger arrivals deterministically.
			t.Compute(time.Duration(i+1) * 10 * time.Microsecond)
			l.Acquire(t)
			order = append(order, i)
			t.Compute(100 * time.Microsecond)
			l.Release(t)
		})
	}
	h.k.RunFor(100 * time.Millisecond)
	if len(order) != 6 {
		t.Fatalf("only %d acquires", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestTPMCSRemovesPreemptedWaiters(t *testing.T) {
	// 1 context. The holder computes while waiters queue up and get
	// preempted... but with 1 context waiters can never spin on CPU
	// alongside the holder; use 2 contexts and force preemption of a
	// spinner by adding CPU hogs.
	k := sim.NewKernel(13)
	m := cpu.NewMachine(k, cpu.Config{Contexts: 2})
	p := m.NewProcess("p")
	env := NewEnv(m)
	l := newTPMCS(env)
	// Holder takes the lock and holds it a long time.
	p.NewThread("holder", func(t *cpu.Thread) {
		l.Acquire(t)
		t.Compute(35 * time.Millisecond)
		l.Release(t)
		t.Compute(50 * time.Millisecond)
	})
	// Waiter spins on the second context.
	acquired := make(map[string]sim.Time)
	p.NewThread("waiter", func(t *cpu.Thread) {
		t.Compute(time.Millisecond)
		l.Acquire(t)
		acquired["waiter"] = k.Now()
		t.Compute(time.Microsecond)
		l.Release(t)
	})
	// A hog arrives later and preempts the spinning waiter at a tick.
	p.NewThread("hog", func(t *cpu.Thread) {
		t.Compute(2 * time.Millisecond) // arrive second on ctx queue
		t.Compute(60 * time.Millisecond)
	})
	k.RunFor(200 * time.Millisecond)
	if l.Removals == 0 {
		t.Fatal("TP-MCS never removed a preempted waiter")
	}
	if _, ok := acquired["waiter"]; !ok {
		t.Fatal("waiter never acquired after removal")
	}
}

func TestAdaptiveMutexBlocksWhenHolderPreempted(t *testing.T) {
	k := sim.NewKernel(17)
	m := cpu.NewMachine(k, cpu.Config{Contexts: 1})
	p := m.NewProcess("p")
	env := NewEnv(m)
	l := NewAdaptiveMutex(env).(*AdaptiveMutex)
	got := false
	p.NewThread("holder", func(t *cpu.Thread) {
		l.Acquire(t)
		t.Compute(40 * time.Millisecond) // will be preempted at ticks
		l.Release(t)
	})
	p.NewThread("waiter", func(t *cpu.Thread) {
		t.Compute(time.Millisecond)
		l.Acquire(t)
		got = true
		l.Release(t)
	})
	k.RunFor(300 * time.Millisecond)
	if !got {
		t.Fatal("waiter never acquired")
	}
	if l.Blocks == 0 {
		t.Fatal("adaptive mutex never blocked despite preempted holder")
	}
}

func TestAdaptivePatienceExhaustion(t *testing.T) {
	// Holder stays on CPU but holds the lock much longer than the
	// patience window: the waiter must block rather than spin forever.
	k := sim.NewKernel(19)
	m := cpu.NewMachine(k, cpu.Config{Contexts: 4})
	p := m.NewProcess("p")
	env := NewEnv(m)
	l := NewAdaptiveMutex(env).(*AdaptiveMutex)
	p.NewThread("holder", func(t *cpu.Thread) {
		l.Acquire(t)
		t.Compute(5 * time.Millisecond)
		l.Release(t)
	})
	p.NewThread("waiter", func(t *cpu.Thread) {
		t.Compute(100 * time.Microsecond)
		l.Acquire(t)
		l.Release(t)
	})
	k.RunFor(100 * time.Millisecond)
	if l.Blocks == 0 {
		t.Fatal("waiter spun through a 5ms hold without blocking")
	}
	acct := p.Acct()
	if acct.SpinContention > time.Millisecond {
		t.Fatalf("waiter spun %v, patience should cap it near %v",
			acct.SpinContention, env.Costs.AdaptivePatience)
	}
}

func TestSpinAccountingSplitsContentionAndInversion(t *testing.T) {
	// 2 contexts: holder on ctx0 (long critical section), spinner on
	// ctx1. At 5ms a real-time thread evicts the holder (it has the
	// oldest slice), so the spinner keeps spinning while the holder is
	// off CPU — priority inversion by the paper's definition.
	k := sim.NewKernel(23)
	m := cpu.NewMachine(k, cpu.Config{Contexts: 2})
	p := m.NewProcess("p")
	env := NewEnv(m)
	l := newTPMCS(env)
	p.NewThread("holder", func(t *cpu.Thread) {
		l.Acquire(t)
		t.Compute(40 * time.Millisecond)
		l.Release(t)
	})
	spinner := p.NewThread("spinner", func(t *cpu.Thread) {
		t.Compute(time.Millisecond)
		l.Acquire(t)
		l.Release(t)
	})
	k.After(5*time.Millisecond, func() {
		rt := p.NewThread("evictor", func(t *cpu.Thread) {
			t.Compute(4 * time.Millisecond)
		})
		rt.SetRealtime(true)
	})
	k.RunFor(4 * time.Millisecond)
	pre := spinner.Acct()
	if pre.SpinContention == 0 {
		t.Fatal("no contention spin recorded while holder on CPU")
	}
	if pre.SpinPrioInv != 0 {
		t.Fatalf("inversion recorded too early: %+v", pre)
	}
	k.RunFor(4 * time.Millisecond) // inside the eviction window
	post := spinner.Acct()
	if post.SpinPrioInv < 2*time.Millisecond {
		t.Fatalf("SpinPrioInv = %v, want >= 2ms while holder evicted", post.SpinPrioInv)
	}
}

func TestBlockingMutexFIFOHandoff(t *testing.T) {
	h := newHarness(29, 8)
	l := NewBlockingMutex(h.env)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		h.p.NewThread(fmt.Sprintf("w%d", i), func(t *cpu.Thread) {
			t.Compute(time.Duration(i+1) * 10 * time.Microsecond)
			l.Acquire(t)
			order = append(order, i)
			t.Compute(200 * time.Microsecond)
			l.Release(t)
		})
	}
	h.k.RunFor(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestBlockingHandoffCostsContextSwitch(t *testing.T) {
	// Two threads ping-ponging a blocking mutex with tiny critical
	// sections: throughput is bounded by context switches.
	h := newHarness(31, 4)
	l := NewBlockingMutex(h.env)
	h.run(l, 2, 500*time.Nanosecond, 0, 20*time.Millisecond)
	spin := newHarness(31, 4)
	ls := NewTPMCS(spin.env)
	spin.run(ls, 2, 500*time.Nanosecond, 0, 20*time.Millisecond)
	if h.acquires*3 > spin.acquires {
		t.Fatalf("blocking (%d) should be far slower than spinning (%d) for short CS",
			h.acquires, spin.acquires)
	}
}

func TestLoadTriggeredBackoffSheds(t *testing.T) {
	k := sim.NewKernel(37)
	m := cpu.NewMachine(k, cpu.Config{Contexts: 4})
	p := m.NewProcess("p")
	env := NewEnv(m)
	mon := NewLTBMonitor(env, p)
	mon.Target = 4
	mon.Start()
	l := NewLoadTriggeredBackoff(env, mon)
	acquires := 0
	for i := 0; i < 10; i++ {
		p.NewThread(fmt.Sprintf("w%d", i), func(t *cpu.Thread) {
			for {
				l.Acquire(t)
				acquires++
				t.Compute(2 * time.Microsecond)
				l.Release(t)
				t.Compute(3 * time.Microsecond)
			}
		})
	}
	k.RunFor(300 * time.Millisecond)
	if mon.Sleeps == 0 {
		t.Fatal("monitor never put a spinner to sleep despite 250% load")
	}
	if acquires == 0 {
		t.Fatal("no progress")
	}
}

func TestEnvWatchMultiplexes(t *testing.T) {
	k := sim.NewKernel(41)
	m := cpu.NewMachine(k, cpu.Config{Contexts: 1})
	p := m.NewProcess("p")
	env := NewEnv(m)
	th := p.NewThread("a", func(t *cpu.Thread) { t.Compute(25 * time.Millisecond) })
	p.NewThread("b", func(t *cpu.Thread) { t.Compute(25 * time.Millisecond) })
	var n1, n2 int
	c1 := env.Watch(th, func(*cpu.Thread) { n1++ }, nil)
	env.Watch(th, func(*cpu.Thread) { n2++ }, nil)
	k.RunFor(30 * time.Millisecond)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("watchers missed preemption: n1=%d n2=%d", n1, n2)
	}
	c1()
	before := n2
	k.RunFor(60 * time.Millisecond)
	if n1 != 1 && n1 != before {
		// n1 must not have advanced after cancel; capture loosely:
	}
	_ = before
}

func TestDeterministicLockBench(t *testing.T) {
	run := func() int {
		h := newHarness(99, 4)
		l := NewTPMCS(h.env)
		h.run(l, 8, 2*time.Microsecond, 5*time.Microsecond, 60*time.Millisecond)
		return h.acquires
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
