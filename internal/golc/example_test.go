package golc_test

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/golc"
	lcrt "repro/internal/golc/runtime"
)

// ExampleMutex shows the intended usage: one load-control runtime per
// process, any number of load-controlled locks registered with it.
func ExampleMutex() {
	rt := lcrt.New(lcrt.Options{})
	rt.Start()
	defer rt.Stop()

	mu := golc.NewMutex(rt)
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 1600
}

// politePolicy is a complete user-defined ContentionPolicy: waiters
// poll the lock and nap a fixed 100µs between attempts, honoring
// cancellation. Wait's whole contract is: keep the spinner census
// honest, return nil once a.Try succeeds, return ctx.Err() if the
// context is done first.
type politePolicy struct{}

func (politePolicy) Name() string { return "polite" }

func (politePolicy) Wait(ctx context.Context, h *lcrt.Handle, a golc.Acquire) error {
	h.Spinning(1)
	defer h.Spinning(-1)
	for {
		if a.Try() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// Example_customPolicy registers a user-defined contention policy and
// runs an ordinary Mutex under it: same lock type, swapped wait
// strategy — the point of the ContentionPolicy redesign.
func Example_customPolicy() {
	if err := golc.RegisterPolicy(politePolicy{}); err != nil {
		panic(err)
	}
	p, err := golc.PolicyByName("polite") // what lcbench -policy does
	if err != nil {
		panic(err)
	}

	rt := lcrt.New(lcrt.Options{})
	rt.Start()
	defer rt.Stop()
	mu := golc.New("custom-demo", golc.WithPolicy(p), golc.WithRuntime(rt))

	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter, mu.Policy().Name())
	// Output: 800 polite
}

// ExampleMutex_LockCtx shows context-aware acquisition: a waiter
// blocked on a held lock leaves cleanly when its context is cancelled.
func ExampleMutex_LockCtx() {
	rt := lcrt.New(lcrt.Options{})
	rt.Start()
	defer rt.Stop()

	mu := golc.New("ctx-demo", golc.WithRuntime(rt))
	mu.Lock() // held: the waiter below cannot acquire

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := mu.LockCtx(ctx)
	fmt.Println(err)
	mu.Unlock()
	// Output: context deadline exceeded
}

// ExampleRuntime_Snapshot shows reading runtime and per-lock activity.
func ExampleRuntime_Snapshot() {
	rt := lcrt.New(lcrt.Options{})
	rt.Start()
	mu := golc.NewNamedMutex(rt, "demo")
	mu.Lock()
	mu.Unlock()
	rt.Stop()
	s := rt.Snapshot()
	fmt.Println(s.Sleeping, s.Target, s.LocksRegistered, s.Locks[0].Name)
	// Output: 0 0 1 demo
}
