package oltp

import (
	"fmt"
	"math/rand"
)

// The multi-statement conflict workload: every transaction touches
// RecordsPerTxn records spread across Partitions partitions, a
// configurable fraction of them drawn from a small shared hot set, in
// RANDOM order — deliberately unsorted, so two transactions regularly
// grab overlapping records in opposite orders. That is the shape where
// the deadlock policies diverge (wait-die kills eagerly on every
// age-inverted conflict; the detector waits and kills only real
// cycles) and where lock escalation pays off (a transaction touching
// many records in one partition folds them into one partition lock
// instead of ballooning the lock table). TATP, by contrast, touches
// one or two records per transaction and never exercises either.
//
// Write touches are read-modify-writes (Read then Write on the same
// record), so the S→X upgrade — the dual-upgrade deadlock shape — is
// part of the mix, not just plain X acquisitions.

// ConflictConfig sizes the conflict workload.
type ConflictConfig struct {
	// Partitions is how many distinct kv shards the key population
	// spans (default 4; capped at the store's shard count).
	Partitions int
	// PerPartition is the number of keys populated per partition
	// (default 256).
	PerPartition int
	// RecordsPerTxn is how many records each transaction touches
	// (default 16). Values above the DB's escalation threshold make
	// transactions escalate mid-flight.
	RecordsPerTxn int
	// SpreadPartitions is how many partitions one transaction's
	// records span (default: all of Partitions). 1 concentrates every
	// touch in a single partition — the pure escalation shape.
	SpreadPartitions int
	// OverlapFrac is the fraction of touches drawn from the hot set
	// (default 0.5). Zero is honored (fully uniform); negative selects
	// the default.
	OverlapFrac float64
	// HotPerPartition is the hot-set size per partition (default 8).
	HotPerPartition int
	// WriteFrac is the fraction of touches that are read-modify-writes
	// rather than plain reads (default 0.5; zero honored, negative
	// selects the default).
	WriteFrac float64
}

func (c ConflictConfig) withDefaults() ConflictConfig {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.PerPartition <= 0 {
		c.PerPartition = 256
	}
	if c.RecordsPerTxn <= 0 {
		c.RecordsPerTxn = 16
	}
	if c.PerPartition < 2*c.RecordsPerTxn {
		// pickTouches rejection-samples distinct keys; keep the
		// population comfortably larger than one transaction's draw so
		// it terminates fast even at SpreadPartitions=1.
		c.PerPartition = 2 * c.RecordsPerTxn
	}
	if c.SpreadPartitions <= 0 || c.SpreadPartitions > c.Partitions {
		c.SpreadPartitions = c.Partitions
	}
	if c.OverlapFrac < 0 {
		c.OverlapFrac = 0.5
	}
	if c.HotPerPartition <= 0 {
		c.HotPerPartition = 8
	}
	if c.HotPerPartition > c.PerPartition {
		c.HotPerPartition = c.PerPartition
	}
	if c.WriteFrac < 0 {
		c.WriteFrac = 0.5
	}
	return c
}

const conflictTable = "conf"

// Conflict drives the conflict workload against one DB. Safe for
// concurrent use; each worker supplies its own rand.Rand.
type Conflict struct {
	db   *DB
	cfg  ConflictConfig
	keys [][]string // keys[p] = populated keys whose storage key routes to partition p
}

// NewConflict probes the store's shard map for keys landing on each of
// the first cfg.Partitions partitions, populates them (directly —
// initial load needs no isolation), and returns the driver.
func NewConflict(db *DB, cfg ConflictConfig) *Conflict {
	c := cfg.withDefaults()
	if c.Partitions > db.store.Shards() {
		c.Partitions = db.store.Shards()
		if c.SpreadPartitions > c.Partitions {
			c.SpreadPartitions = c.Partitions
		}
	}
	w := &Conflict{db: db, cfg: c, keys: make([][]string, c.Partitions)}
	filled := 0
	for i := 0; filled < c.Partitions; i++ {
		k := fmt.Sprintf("r%07d", i)
		p := db.store.ShardOf(storageKey(conflictTable, k))
		if p >= c.Partitions || len(w.keys[p]) >= c.PerPartition {
			continue
		}
		w.keys[p] = append(w.keys[p], k)
		db.store.Put(storageKey(conflictTable, k), "0")
		if len(w.keys[p]) == c.PerPartition {
			filled++
		}
	}
	return w
}

// Config returns the (defaulted, shard-capped) configuration in use.
func (w *Conflict) Config() ConflictConfig { return w.cfg }

// conflictTouch is one record access of a conflict transaction.
type conflictTouch struct {
	part  int
	key   string
	write bool
}

// pickTouches assembles one transaction's record set: RecordsPerTxn
// distinct records over SpreadPartitions partitions, each drawn from
// the hot set with probability OverlapFrac, in random order. At
// extreme overlap the hot population (SpreadPartitions x
// HotPerPartition) can be smaller than one transaction's draw, so
// rejection sampling is bounded: once the random draws stop finding
// fresh keys, the remainder is filled deterministically from the
// uniform population (which withDefaults keeps at >= 2x
// RecordsPerTxn per partition) instead of spinning forever.
func (w *Conflict) pickTouches(rng *rand.Rand) []conflictTouch {
	base := rng.Intn(w.cfg.Partitions)
	touches := make([]conflictTouch, 0, w.cfg.RecordsPerTxn)
	seen := make(map[string]struct{}, w.cfg.RecordsPerTxn)
	rejects := 0
	for len(touches) < w.cfg.RecordsPerTxn && rejects < 8*w.cfg.RecordsPerTxn {
		part := (base + rng.Intn(w.cfg.SpreadPartitions)) % w.cfg.Partitions
		var key string
		if rng.Float64() < w.cfg.OverlapFrac {
			key = w.keys[part][rng.Intn(w.cfg.HotPerPartition)]
		} else {
			key = w.keys[part][rng.Intn(len(w.keys[part]))]
		}
		if _, dup := seen[key]; dup {
			rejects++
			continue
		}
		seen[key] = struct{}{}
		touches = append(touches, conflictTouch{part: part, key: key, write: rng.Float64() < w.cfg.WriteFrac})
	}
	for off := 0; len(touches) < w.cfg.RecordsPerTxn; off++ {
		// Deterministic fill: first unseen keys of the spread, round-robin.
		part := (base + off%w.cfg.SpreadPartitions) % w.cfg.Partitions
		key := w.keys[part][(off/w.cfg.SpreadPartitions)%len(w.keys[part])]
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		touches = append(touches, conflictTouch{part: part, key: key, write: rng.Float64() < w.cfg.WriteFrac})
	}
	return touches
}

// Run executes one conflict transaction via DB.Run. The record set is
// picked once, outside the retry loop, so a retried transaction
// replays the same conflict — the honest comparison between policies.
// The returned error is terminal: retries exhausted or a real failure.
func (w *Conflict) Run(rng *rand.Rand) error {
	touches := w.pickTouches(rng)
	return w.db.Run(func(t *Txn) error {
		for _, tc := range touches {
			v, ok, err := t.Read(conflictTable, tc.key)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("conflict: record %s/%s missing", conflictTable, tc.key)
			}
			if tc.write {
				var n int
				fmt.Sscanf(v, "%d", &n)
				if err := t.Write(conflictTable, tc.key, fmt.Sprintf("%d", n+1)); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// TotalWrites sums the committed counters across the whole population
// — the workload's conservation check: it must equal the number of
// committed record writes.
func (w *Conflict) TotalWrites() int {
	total := 0
	for _, keys := range w.keys {
		for _, k := range keys {
			v, ok := w.db.store.Get(storageKey(conflictTable, k))
			if !ok {
				continue
			}
			var n int
			fmt.Sscanf(v, "%d", &n)
			total += n
		}
	}
	return total
}
