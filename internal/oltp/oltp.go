// Package oltp is a real-time transactional layer over internal/kv:
// a hierarchical two-phase lock manager plus strict-2PL transactions,
// running on the same process-wide load-control runtime as every other
// latch in the process.
//
// This is the paper's richest workload class made real. Its Shore-MT
// experiments show load control rescuing database lock-manager convoys
// at high multiprogramming — the regime where a thread holds several
// locks at once, gets descheduled, and every spinning waiter burns a
// kernel quantum. The simulator models this (internal/storage); this
// package runs it on actual hardware:
//
//   - Logical locks form a hierarchy — table → partition → record —
//     with the standard intention modes (IS, IX, S, SIX, X) and
//     compatibility matrix. Partitions are the kv store's shards
//     (kv.Store.ShardOf), so a hot partition in the transaction layer
//     is exactly a hot shard latch in the store.
//   - The lock table itself is guarded by striped latches that are
//     golc primitives registered with the shared load-control runtime
//     under the store's contention policy, so lock-manager latching —
//     one of the big physical contention sources inside database
//     engines — is governed exactly like the data-path latches, and
//     hot-swaps with them (DB.SetLatchPolicy).
//   - Logical waits block on a per-waiter channel, never on a latch:
//     transactions hold locks for far too long for spinning to make
//     sense, and a blocked transaction must not wedge the lock table.
//     No goroutine ever parks while holding a latch (the paper's
//     never-block-a-lock-holder rule, end to end).
//   - Deadlock handling is pluggable (Options.DeadlockPolicy). The
//     default is wait-die avoidance on transaction begin-timestamps: a
//     requester younger than any conflicting holder or queued
//     conflicting waiter aborts immediately (counted in Metrics);
//     older requesters wait, so every wait edge points old→young and
//     cycles cannot form. The alternative is a waits-for-graph
//     detector: every conflict waits, edges are recorded when a
//     request parks, a cycle check runs on-block, and the youngest
//     transaction in any cycle is aborted — fewer, better-targeted
//     aborts at the price of letting real cycles form first. A
//     bounded-wait timeout remains as a backstop tripwire under both.
//     DB.Run retries aborted transactions under their original
//     timestamp, which is what makes either policy live: a
//     transaction only ever gets older, so it eventually wins.
//   - Lock escalation defends the lock table itself: when a
//     transaction's record-lock count under one partition crosses
//     Options.EscalationThreshold, the next record access under that
//     partition is satisfied by a single partition-level S or X lock
//     instead, and the accumulated record entries are dropped — a
//     transaction can no longer balloon the lock table (and its
//     stripe latches) with thousands of record locks. The escalated
//     acquire is an ordinary policy-governed request: it can wait,
//     wait-die, or be picked as a deadlock victim like any other.
//   - Transactions buffer writes (reads see their own writes) and
//     apply them at commit through kv.Store.ApplyBatch — one shard
//     latch acquisition per touched shard — then release every lock
//     (strict 2PL: nothing is released early, so reads are repeatable
//     and writes are never exposed before commit).
//
// The TATP-style workload in tatp.go drives the whole stack; cmd/
// lcbench -oltp sweeps it across spin, block, and load-control latch
// modes as multiprogramming rises past the CPU count.
package oltp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/golc"
	"repro/internal/golc/obs"
	lcrt "repro/internal/golc/runtime"
	"repro/internal/kv"
	"repro/internal/wal"
)

// ErrAborted matches any transaction abort via errors.Is; the concrete
// error is always an *AbortError carrying the reason.
var ErrAborted = errors.New("oltp: transaction aborted")

// ErrTxnDone is returned by operations on a committed or aborted Txn.
var ErrTxnDone = errors.New("oltp: transaction already finished")

// ErrCallerAborted is returned by DB.Run when fn aborts the
// transaction itself (t.Abort()) and then returns nil: there is
// nothing to commit and — absent a lock-manager kill order — nothing
// to retry, so silently reporting success would be a lie and ErrTxnDone
// from a blind Commit would be a mystery.
var ErrCallerAborted = errors.New("oltp: Run: fn aborted the transaction and returned nil")

// AbortReason says why a transaction was told to abort.
type AbortReason int

const (
	// AbortWaitDie: the requester was younger than a conflicting
	// holder or queued waiter (the deadlock-avoidance policy).
	AbortWaitDie AbortReason = iota
	// AbortTimeout: a lock wait exceeded Options.WaitTimeout (the
	// backstop; under either policy this indicates overload or a bug,
	// not routine deadlock resolution).
	AbortTimeout
	// AbortDeadlock: the waits-for-graph detector found a cycle and
	// this transaction was its youngest member.
	AbortDeadlock
)

func (r AbortReason) String() string {
	switch r {
	case AbortWaitDie:
		return "wait-die"
	case AbortTimeout:
		return "timeout"
	case AbortDeadlock:
		return "deadlock"
	default:
		return fmt.Sprintf("AbortReason(%d)", int(r))
	}
}

// AbortError reports a lock-manager-initiated abort. The transaction
// must be Aborted (releasing everything it holds) and may be retried;
// DB.Run does both.
type AbortError struct {
	Reason   AbortReason
	Resource ResourceID
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("oltp: transaction aborted (%s) at %s", e.Reason, e.Resource)
}

// Is makes errors.Is(err, ErrAborted) true for every abort.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// DefaultMaxRetries is the standard DB.Run retry bound. It is a
// sentinel the caller opts into explicitly (MaxRetries:
// oltp.DefaultMaxRetries) — Options no longer rewrites 0 behind the
// caller's back, so MaxRetries: 0 genuinely means zero retries.
const DefaultMaxRetries = 100

// DefaultEscalationThreshold is the record-lock count per partition at
// which Txn.lockRecord escalates to a partition lock when
// Options.EscalationThreshold is left at its zero value.
const DefaultEscalationThreshold = 64

// Options configures a DB. The lock-table stripe latches start under
// the store's own contention policy (kv.Store.Policy), so data-path
// and lock-manager latches are governed alike — the comparison the
// benchmarks make; SetLatchPolicy and kv.Store.SetPolicy flip them
// together at runtime.
type Options struct {
	// Runtime is the load-control runtime the stripe latches register
	// with, whatever their contention policy (default: the process-wide
	// runtime).
	Runtime *lcrt.Runtime
	// DeadlockPolicy resolves logical lock conflicts (default:
	// NewWaitDiePolicy(); the alternative is NewDetectPolicy()). A
	// policy instance may carry per-DB state — never share one
	// instance between DBs.
	DeadlockPolicy DeadlockPolicy
	// LockStripes is the number of lock-table stripes (default 32).
	LockStripes int
	// WaitTimeout bounds one logical lock wait (default 2s). Both
	// deadlock policies resolve conflicts themselves, so this firing
	// means overload or a bug; it is counted separately in Metrics.
	WaitTimeout time.Duration
	// MaxRetries bounds DB.Run's abort-and-retry loop: the number of
	// retries allowed after the first attempt. 0 — the zero value —
	// means no retries (the first abort is terminal); <0 means
	// unlimited (lcbench's MaxRetries: -1). Use DefaultMaxRetries for
	// the standard bound. (Historically 0 was silently rewritten to
	// 100, making "no retries" impossible to request.)
	MaxRetries int
	// EscalationThreshold is the number of record locks a transaction
	// may accumulate under one partition before its next record access
	// there escalates to a single partition-level lock (zero value:
	// DefaultEscalationThreshold; <0 disables escalation).
	EscalationThreshold int
	// WAL, when non-nil, makes commits durable: Txn.Commit appends the
	// buffered write-set to the log as one redo record and returns
	// only after its commit group is fsynced (group commit — see
	// internal/wal). The log must have been Opened against this DB's
	// store, so recovery replays into the same data. nil keeps the
	// seed's volatile behavior.
	WAL *wal.Log
}

func (o Options) withDefaults() Options {
	if o.DeadlockPolicy == nil {
		o.DeadlockPolicy = NewWaitDiePolicy()
	}
	if o.LockStripes <= 0 {
		o.LockStripes = 32
	}
	if o.WaitTimeout == 0 {
		o.WaitTimeout = 2 * time.Second
	}
	if o.EscalationThreshold == 0 {
		o.EscalationThreshold = DefaultEscalationThreshold
	}
	return o
}

// Metrics is the DB's counter set. All fields are atomics; read them
// through Snapshot.
type Metrics struct {
	Begins         atomic.Uint64
	Commits        atomic.Uint64
	Aborts         atomic.Uint64
	Retries        atomic.Uint64
	WaitDieAborts  atomic.Uint64
	DetectedAborts atomic.Uint64 // victims of the waits-for-graph detector
	TimeoutAborts  atomic.Uint64
	Escalations    atomic.Uint64 // record→partition lock escalations
	LockWaits      atomic.Uint64 // logical lock requests that blocked
	LatchMisses    atomic.Uint64 // lock-table latch TryLock misses (physical contention)
	CtxCancels     atomic.Uint64 // lock waits ended by the caller's context (not a deadlock victim)
}

// MetricsSnapshot is a point-in-time copy of Metrics, JSON-friendly.
type MetricsSnapshot struct {
	Begins         uint64 `json:"begins"`
	Commits        uint64 `json:"commits"`
	Aborts         uint64 `json:"aborts"`
	Retries        uint64 `json:"retries"`
	WaitDieAborts  uint64 `json:"wait_die_aborts"`
	DetectedAborts uint64 `json:"detected_aborts"`
	TimeoutAborts  uint64 `json:"timeout_aborts"`
	Escalations    uint64 `json:"escalations"`
	LockWaits      uint64 `json:"lock_waits"`
	LatchMisses    uint64 `json:"latch_misses"`
	CtxCancels     uint64 `json:"ctx_cancels"`
}

func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Begins:         m.Begins.Load(),
		Commits:        m.Commits.Load(),
		Aborts:         m.Aborts.Load(),
		Retries:        m.Retries.Load(),
		WaitDieAborts:  m.WaitDieAborts.Load(),
		DetectedAborts: m.DetectedAborts.Load(),
		TimeoutAborts:  m.TimeoutAborts.Load(),
		Escalations:    m.Escalations.Load(),
		LockWaits:      m.LockWaits.Load(),
		LatchMisses:    m.LatchMisses.Load(),
		CtxCancels:     m.CtxCancels.Load(),
	}
}

// DB is the transactional layer over one kv.Store. Create with New.
type DB struct {
	store *kv.Store
	lm    *lockManager
	wal   *wal.Log // nil: volatile commits
	opts  Options
	tids  atomic.Uint64
	m     Metrics

	// rec is the latch runtime's flight recorder: transaction
	// lifecycle events (block, abort, deadlock victim, escalation)
	// land in the same ring as the physical lock events, so one trace
	// shows both layers. commitLat and lockWait are the DB's logical
	// latency distributions: successful DB.Run wall time (retries and
	// backoff included) and time blocked per logical lock wait.
	rec       *obs.Recorder
	commitLat *obs.Histogram
	lockWait  *obs.Histogram
}

// New builds a DB over store. The store is not owned: the caller keeps
// serving non-transactional traffic through it if it wants (single-key
// kv operations are trivially atomic; they bypass logical locking, so
// mixing them with transactions on the same keys forfeits isolation
// for those keys only).
func New(store *kv.Store, opts Options) *DB {
	o := opts.withDefaults()
	db := &DB{
		store:     store,
		wal:       o.WAL,
		opts:      o,
		rec:       latchRuntime(o).Recorder(),
		commitLat: obs.NewHistogram(8),
		lockWait:  obs.NewHistogram(4),
	}
	db.lm = newLockManager(store.Policy(), o, &db.m, db.rec, db.lockWait)
	return db
}

// Recorder returns the flight recorder the DB records into (the latch
// runtime's).
func (db *DB) Recorder() *obs.Recorder { return db.rec }

// CommitLatency returns the distribution of successful DB.Run wall
// times, retries and backoff included.
func (db *DB) CommitLatency() obs.HistSnapshot { return db.commitLat.Snapshot() }

// LockWaitHist returns the distribution of logical lock wait times
// (one observation per blocked acquire, however it ended).
func (db *DB) LockWaitHist() obs.HistSnapshot { return db.lockWait.Snapshot() }

// SetLatchPolicy hot-swaps the contention policy of the lock table's
// stripe latches (the physical latches, not the logical
// DeadlockPolicy). Pair it with kv.Store.SetPolicy so data-path and
// lock-manager latches stay governed alike; lcserve's POST /policy
// does both.
func (db *DB) SetLatchPolicy(p golc.ContentionPolicy) { db.lm.setPolicy(p) }

// LatchPolicyName reports the contention policy the DB's stripe
// latches currently use.
func (db *DB) LatchPolicyName() string {
	return db.lm.stripes[0].latch.Policy().Name()
}

// Store returns the underlying kv store.
func (db *DB) Store() *kv.Store { return db.store }

// WAL returns the write-ahead log commits are made durable through,
// or nil for a volatile DB.
func (db *DB) WAL() *wal.Log { return db.wal }

// Metrics returns a point-in-time copy of the DB's counters.
func (db *DB) Metrics() MetricsSnapshot { return db.m.snapshot() }

// PolicyName reports the deadlock policy in use ("waitdie", "detect").
func (db *DB) PolicyName() string { return db.opts.DeadlockPolicy.PolicyName() }

// LockEntries counts live lock-table entries across all stripes. A
// quiescent DB must report zero under every policy — locks are strict
// 2PL (escalation's record fold-in included), so anything left over is
// a leak. It latches every stripe; meant for stats and tests, not hot
// paths.
func (db *DB) LockEntries() int { return db.lm.entries() }

// Close releases the lock manager's latch registrations (a no-op in
// Spin and Std modes; LoadControlled registrations are also GC-aware,
// so Close is about promptness). The DB stays usable.
func (db *DB) Close() { db.lm.close() }

// Begin starts a transaction with a fresh begin-timestamp. Prefer Run,
// which also handles abort-and-retry.
func (db *DB) Begin() *Txn { return db.begin(context.Background(), db.tids.Add(1)) }

// BeginCtx is Begin with a caller context: every logical lock wait the
// transaction enters is cancelled when ctx is — the wait returns an
// error wrapping ctx.Err() (not an AbortError: a caller cancellation is
// terminal, not a retry signal), counted in Metrics.CtxCancels.
func (db *DB) BeginCtx(ctx context.Context) *Txn { return db.begin(ctx, db.tids.Add(1)) }

func (db *DB) begin(ctx context.Context, tid uint64) *Txn {
	db.m.Begins.Add(1)
	return &Txn{
		db:       db,
		ctx:      ctx,
		tid:      tid,
		held:     make(map[ResourceID]Mode),
		recCount: make(map[ResourceID]int),
		writes:   make(map[string]kv.Write),
	}
}

// Run executes fn in a transaction, committing on nil return if fn has
// not finished the transaction itself. Aborted transactions (wait-die,
// detected deadlock, timeout) are retried under their ORIGINAL
// begin-timestamp — the retried transaction only ever gets relatively
// older, which is what guarantees it eventually wins every age-based
// conflict. Any other error rolls back and is returned as-is.
//
// Run inspects the transaction's final state rather than blindly
// committing: if fn committed itself, that is success; if the lock
// manager ordered an abort that fn swallowed (returned nil after an
// AbortError), the attempt is rolled back and retried — committing a
// kill-ordered transaction's partial work would be wrong; and if fn
// aborted the transaction voluntarily and returned nil, Run returns
// ErrCallerAborted instead of the old confusing ErrTxnDone from a
// doomed Commit call.
func (db *DB) Run(fn func(*Txn) error) error {
	return db.RunCtx(context.Background(), fn)
}

// RunCtx is Run bound to a caller context (a request context in
// lcserve, a test deadline): the retry loop stops between attempts when
// ctx is cancelled, backoff sleeps wake on cancellation, and every
// logical lock wait inside an attempt is cancellable (see BeginCtx).
// Cancellation surfaces as an error wrapping ctx.Err() and is never
// retried — unlike a deadlock-victim abort, the transaction is not
// going to be re-run older and win; the caller has left.
func (db *DB) RunCtx(ctx context.Context, fn func(*Txn) error) error {
	var t0 int64
	if db.rec.Enabled() {
		t0 = db.rec.Now()
	}
	err := db.run(ctx, fn)
	if err == nil && t0 != 0 {
		// Commit latency is end-to-end: every aborted attempt and
		// backoff sleep a caller sat through counts against it.
		db.commitLat.Observe(db.rec.Now() - t0)
	}
	return err
}

func (db *DB) run(ctx context.Context, fn func(*Txn) error) error {
	tid := db.tids.Add(1)
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("oltp: run cancelled before attempt %d: %w", attempt+1, cerr)
		}
		t := db.begin(ctx, tid)
		err := fn(t)
		if err == nil {
			switch {
			case t.state == txnCommitted:
				return nil
			case t.state == txnAborted && t.abortErr == nil:
				return ErrCallerAborted
			case t.abortErr != nil:
				// The lock manager told this transaction to die and fn
				// swallowed it: roll back (no-op if fn already did)
				// and fall through to the retry decision.
				t.Abort()
				err = t.abortErr
			default:
				if cerr := t.Commit(); cerr != nil {
					return cerr
				}
				return nil
			}
		} else {
			if t.state == txnCommitted {
				// fn committed and then failed; retrying would re-run
				// committed work. Surface the error as terminal.
				return err
			}
			t.Abort() // no-op if fn already aborted
			if !errors.Is(err, ErrAborted) {
				return err
			}
		}
		if db.opts.MaxRetries >= 0 && attempt >= db.opts.MaxRetries {
			return fmt.Errorf("oltp: giving up after %d attempts: %w", attempt+1, err)
		}
		db.m.Retries.Add(1)
		// Capped exponential backoff: give the transaction that killed
		// us time to finish before we re-collide with it. The sleep
		// wakes early if the caller gives up (the cancellation itself is
		// reported by the ctx.Err() check at the top of the next lap).
		backoff := time.NewTimer(20 * time.Microsecond << min(attempt, 6))
		select {
		case <-backoff.C:
		case <-ctx.Done():
			backoff.Stop()
		}
	}
}
