package kv

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	lcrt "repro/internal/golc/runtime"
)

func newTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Mode == LoadControlled && opts.Runtime == nil {
		rt := lcrt.New(lcrt.Options{Interval: time.Millisecond})
		rt.Start()
		t.Cleanup(rt.Stop)
		opts.Runtime = rt
	}
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

// TestShardRouting is the routing table test: fixed expectations (the
// hash is part of the on-wire contract of nothing, but stable routing
// is what the shard-latch design hangs off), plus stability and range
// properties.
func TestShardRouting(t *testing.T) {
	cases := []struct {
		key     string
		shard16 int
		shard7  int
	}{
		{"alpha", 7, 3},
		{"beta", 3, 5},
		{"gamma", 2, 6},
		{"delta", 5, 3},
		{"user:0001", 7, 1},
		{"user:0002", 6, 6},
		{"user:0003", 5, 4},
		{"", 9, 1},
		{"k", 2, 4},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("key=%q", tc.key), func(t *testing.T) {
			if got := ShardIndex(tc.key, 16); got != tc.shard16 {
				t.Errorf("ShardIndex(%q, 16) = %d, want %d", tc.key, got, tc.shard16)
			}
			if got := ShardIndex(tc.key, 7); got != tc.shard7 {
				t.Errorf("ShardIndex(%q, 7) = %d, want %d", tc.key, got, tc.shard7)
			}
			// Stability: routing is a pure function.
			if a, b := ShardIndex(tc.key, 16), ShardIndex(tc.key, 16); a != b {
				t.Errorf("routing not stable: %d then %d", a, b)
			}
		})
	}
	// Range and spread: 10k sequential keys must land in [0,n) and
	// leave no shard empty (Fibonacci spread).
	for _, n := range []int{1, 2, 16, 64} {
		hit := make([]int, n)
		for i := 0; i < 10000; i++ {
			idx := ShardIndex(fmt.Sprintf("key-%05d", i), n)
			if idx < 0 || idx >= n {
				t.Fatalf("ShardIndex out of range: %d with n=%d", idx, n)
			}
			hit[idx]++
		}
		for s, c := range hit {
			if c == 0 {
				t.Errorf("n=%d: shard %d never hit by 10k sequential keys", n, s)
			}
		}
	}
}

func TestPutGetDelete(t *testing.T) {
	for _, mode := range []LockMode{LoadControlled, Spin, Std} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestStore(t, Options{Shards: 8, IndexStripes: 4, Mode: mode})
			if _, ok := s.Get("a"); ok {
				t.Fatal("get on empty store")
			}
			if old, existed := s.Put("a", "1"); existed {
				t.Fatalf("fresh put reported old value %q", old)
			}
			if v, ok := s.Get("a"); !ok || v != "1" {
				t.Fatalf("get = %q,%v", v, ok)
			}
			if old, existed := s.Put("a", "2"); !existed || old != "1" {
				t.Fatalf("overwrite = %q,%v", old, existed)
			}
			if s.Len() != 1 {
				t.Fatalf("len = %d", s.Len())
			}
			if old, existed := s.Delete("a"); !existed || old != "2" {
				t.Fatalf("delete = %q,%v", old, existed)
			}
			if _, ok := s.Get("a"); ok {
				t.Fatal("get after delete")
			}
			if _, existed := s.Delete("a"); existed {
				t.Fatal("double delete reported a value")
			}
		})
	}
}

func TestSecondaryIndex(t *testing.T) {
	s := newTestStore(t, Options{Shards: 8, IndexStripes: 4})
	s.Put("a", "red")
	s.Put("b", "red")
	s.Put("c", "blue")
	if got := s.Lookup("red"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Lookup(red) = %v", got)
	}
	// Overwrite moves the key between posting sets.
	s.Put("a", "blue")
	if got := s.Lookup("red"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Lookup(red) after move = %v", got)
	}
	if got := s.Lookup("blue"); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Lookup(blue) = %v", got)
	}
	// Delete removes the posting.
	s.Delete("b")
	if got := s.Lookup("red"); len(got) != 0 {
		t.Fatalf("Lookup(red) after delete = %v", got)
	}
	// Idempotent same-value put leaves the index intact.
	s.Put("c", "blue")
	if got := s.Lookup("blue"); len(got) != 2 {
		t.Fatalf("Lookup(blue) after same-value put = %v", got)
	}
}

func TestScan(t *testing.T) {
	s := newTestStore(t, Options{Shards: 8, IndexStripes: 4})
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("user:%04d", i), fmt.Sprintf("v%d", i))
	}
	s.Put("other", "x")
	all := s.Scan("user:", 0)
	if len(all) != 50 {
		t.Fatalf("scan matched %d keys, want 50", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key >= all[i].Key {
			t.Fatalf("scan out of order at %d: %q >= %q", i, all[i-1].Key, all[i].Key)
		}
	}
	limited := s.Scan("user:", 7)
	if len(limited) != 7 || limited[0].Key != "user:0000" {
		t.Fatalf("limited scan = %d pairs, first %q", len(limited), limited[0].Key)
	}
	if got := s.Scan("", 0); len(got) != 51 {
		t.Fatalf("empty-prefix scan = %d, want 51", len(got))
	}
	if got := s.Scan("zzz", 0); len(got) != 0 {
		t.Fatalf("no-match scan = %v", got)
	}
}

// TestOrderingContract pins the documented deterministic ordering of
// Lookup and Scan: ascending lexicographic key order, and limited
// scans return the first matches in that order. Keys are inserted in
// shuffled order so map iteration or insertion order can't fake it.
func TestOrderingContract(t *testing.T) {
	s := newTestStore(t, Options{Shards: 8, IndexStripes: 4})
	perm := rand.New(rand.NewSource(7)).Perm(64)
	for _, i := range perm {
		s.Put(fmt.Sprintf("user:%04d", i), fmt.Sprintf("tier-%d", i%3))
	}
	for run := 0; run < 3; run++ { // deterministic across calls, too
		keys := s.Lookup("tier-0")
		if len(keys) == 0 {
			t.Fatal("Lookup returned nothing")
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("Lookup out of order: %v", keys)
		}
		all := s.Scan("user:", 0)
		if len(all) != 64 {
			t.Fatalf("scan matched %d", len(all))
		}
		for i := 1; i < len(all); i++ {
			if all[i-1].Key >= all[i].Key {
				t.Fatalf("Scan out of order at %d: %q >= %q", i, all[i-1].Key, all[i].Key)
			}
		}
		limited := s.Scan("user:", 5)
		for i, p := range limited {
			if want := fmt.Sprintf("user:%04d", i); p.Key != want {
				t.Fatalf("limited scan[%d] = %q, want %q (first matches in order)", i, p.Key, want)
			}
		}
	}
}

// TestShardOf: the instance-level partition map must agree with the
// package routing function for this store's shard count.
func TestShardOf(t *testing.T) {
	s := newTestStore(t, Options{Shards: 8, IndexStripes: 4})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", i)
		if got, want := s.ShardOf(key), ShardIndex(key, 8); got != want {
			t.Fatalf("ShardOf(%q) = %d, want %d", key, got, want)
		}
	}
}

// TestScanShard: per-shard scans must be sorted, complete, and agree
// with the routing map — together the shards partition the store.
func TestScanShard(t *testing.T) {
	s := newTestStore(t, Options{Shards: 8, IndexStripes: 4})
	for i := 0; i < 200; i++ {
		s.Put(fmt.Sprintf("k%03d", i), "v")
	}
	total := 0
	for idx := 0; idx < s.Shards(); idx++ {
		pairs := s.ScanShard(idx)
		total += len(pairs)
		for i, p := range pairs {
			if s.ShardOf(p.Key) != idx {
				t.Fatalf("shard %d returned foreign key %q (routes to %d)", idx, p.Key, s.ShardOf(p.Key))
			}
			if i > 0 && pairs[i-1].Key >= p.Key {
				t.Fatalf("shard %d out of order: %q >= %q", idx, pairs[i-1].Key, p.Key)
			}
		}
	}
	if total != 200 {
		t.Fatalf("shards sum to %d keys, want 200", total)
	}
}

// TestApplyBatch: puts and deletes across shards apply atomically per
// shard, keep the secondary index consistent, and later writes to the
// same key win.
func TestApplyBatch(t *testing.T) {
	for _, mode := range []LockMode{LoadControlled, Spin, Std} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestStore(t, Options{Shards: 8, IndexStripes: 4, Mode: mode})
			s.Put("stale", "red")
			s.ApplyBatch(nil) // no-op
			s.ApplyBatch([]Write{
				{Key: "a", Value: "red"},
				{Key: "b", Value: "blue"},
				{Key: "c", Value: "red"},
				{Key: "stale", Delete: true},
				{Key: "a", Value: "blue"}, // same-key overwrite in one batch
			})
			if v, ok := s.Get("a"); !ok || v != "blue" {
				t.Fatalf("a = %q,%v", v, ok)
			}
			if _, ok := s.Get("stale"); ok {
				t.Fatal("batch delete did not remove key")
			}
			if got := s.Lookup("red"); len(got) != 1 || got[0] != "c" {
				t.Fatalf("Lookup(red) = %v", got)
			}
			if got := s.Lookup("blue"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
				t.Fatalf("Lookup(blue) = %v", got)
			}
			if s.Len() != 3 {
				t.Fatalf("len = %d", s.Len())
			}
		})
	}
}

// TestApplyBatchConcurrent: concurrent batch commits and single-key
// writers must not deadlock or corrupt the index (-race exercised).
func TestApplyBatchConcurrent(t *testing.T) {
	s := newTestStore(t, Options{Shards: 8, IndexStripes: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				if rng.Intn(2) == 0 {
					batch := make([]Write, 0, 4)
					for j := 0; j < 4; j++ {
						batch = append(batch, Write{
							Key:    fmt.Sprintf("k%03d", rng.Intn(100)),
							Value:  fmt.Sprintf("v%d", rng.Intn(8)),
							Delete: rng.Intn(5) == 0,
						})
					}
					s.ApplyBatch(batch)
				} else {
					s.Put(fmt.Sprintf("k%03d", rng.Intn(100)), fmt.Sprintf("v%d", rng.Intn(8)))
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Quiescent store/index agreement, as in TestConcurrentMixedOps.
	for _, p := range s.Scan("", 0) {
		found := false
		for _, k := range s.Lookup(p.Value) {
			if k == p.Key {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %q (value %q) missing from index", p.Key, p.Value)
		}
	}
}

// TestLatchStats: the aggregate must equal the sum of the runtime's
// per-latch snapshot entries (including the wake-path split). Since
// the policy API unified the latch types, every mode registers with a
// runtime and keeps counters; an uncontended store still reports all
// zeros, whatever its policy.
func TestLatchStats(t *testing.T) {
	rt := lcrt.New(lcrt.Options{Interval: time.Millisecond, SpinBeforePark: 64})
	rt.Start()
	t.Cleanup(rt.Stop)
	s := newTestStore(t, Options{Shards: 1, IndexStripes: 1, Mode: LoadControlled, Runtime: rt})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Put(fmt.Sprintf("k%03d", i%50), fmt.Sprintf("v%d", (id+i)%8))
			}
		}(w)
	}
	wg.Wait()
	agg := s.LatchStats()
	if agg.Name != "kv/all" {
		t.Fatalf("aggregate name = %q", agg.Name)
	}
	var want lcrt.LockStats
	for _, ls := range rt.Snapshot().Locks {
		want.Spins += ls.Spins
		want.Blocks += ls.Blocks
		want.ControllerWakes += ls.ControllerWakes
		want.TimeoutWakes += ls.TimeoutWakes
		want.UnlockWakes += ls.UnlockWakes
	}
	if agg.Spins != want.Spins || agg.Blocks != want.Blocks ||
		agg.ControllerWakes != want.ControllerWakes ||
		agg.TimeoutWakes != want.TimeoutWakes || agg.UnlockWakes != want.UnlockWakes {
		t.Fatalf("aggregate %+v != runtime sum %+v", agg, want)
	}
	// Wake accounting must balance: every ended park was counted once.
	if agg.Blocks < agg.ControllerWakes+agg.TimeoutWakes+agg.UnlockWakes {
		t.Fatalf("more wakes than parks: %+v", agg)
	}

	for _, mode := range []LockMode{Spin, Std} {
		s := newTestStore(t, Options{Shards: 2, IndexStripes: 2, Mode: mode})
		s.Put("a", "1")
		if agg := s.LatchStats(); agg.Spins != 0 || agg.Blocks != 0 {
			t.Fatalf("%v mode counted contention on an uncontended store: %+v", mode, agg)
		}
	}
}

// TestConcurrentMixedOps drives every operation from many goroutines
// under -race, then verifies store/index agreement.
func TestConcurrentMixedOps(t *testing.T) {
	for _, mode := range []LockMode{LoadControlled, Spin, Std} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestStore(t, Options{Shards: 8, IndexStripes: 4, Mode: mode})
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 2000; i++ {
						key := fmt.Sprintf("k%03d", rng.Intn(100))
						val := fmt.Sprintf("v%d", rng.Intn(10))
						switch rng.Intn(10) {
						case 0:
							s.Delete(key)
						case 1, 2:
							s.Put(key, val)
						case 3:
							s.Scan("k0", 10)
						case 4:
							s.Lookup(val)
						default:
							s.Get(key)
						}
					}
				}(int64(w))
			}
			wg.Wait()
			// Quiescent check: every stored key is indexed under its
			// value, and every index posting points at a live key.
			pairs := s.Scan("", 0)
			for _, p := range pairs {
				found := false
				for _, k := range s.Lookup(p.Value) {
					if k == p.Key {
						found = true
					}
				}
				if !found {
					t.Fatalf("key %q (value %q) missing from index", p.Key, p.Value)
				}
			}
			for d := 0; d < 10; d++ {
				val := fmt.Sprintf("v%d", d)
				for _, k := range s.Lookup(val) {
					if v, ok := s.Get(k); !ok || v != val {
						t.Fatalf("index posting %q->%q stale (store has %q,%v)", val, k, v, ok)
					}
				}
			}
		})
	}
}
