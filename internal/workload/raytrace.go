package workload

import (
	"fmt"
	"time"

	"repro/internal/cpu"
	"repro/internal/locks"
)

// Raytrace models the SPLASH-2 Raytrace application (§4): a central
// work queue of tiles with irregular per-tile costs, protected by the
// lock under test. The application is >99% parallel, but the queue lock
// is hit by every thread for every tile, and the irregular tile costs
// prevent static partitioning — which is why contention depends on the
// thread count, not the input size, and why it is such a good load-
// control candidate.
//
// Tile costs are deterministic functions of the tile index with a
// heavy-ish tail (a few tiles cost 10x the median), standing in for the
// car.geo scene's uneven ray-bounce depths.
type Raytrace struct {
	w    *World
	lock locks.Lock

	// Tiles per frame; threads render frames back to back.
	Tiles int
	// MeanTileCost is the median tile compute time.
	MeanTileCost time.Duration
	// QueueOp is the work under the queue lock per tile fetch.
	QueueOp time.Duration

	next      int
	frame     uint64
	completed uint64
}

// NewRaytrace builds the driver over one queue lock from f. The queue
// operation cost is calibrated to the machine size so the queue lock —
// the application's documented scalability limit — nears saturation as
// the machine does.
func NewRaytrace(w *World, f locks.Factory) *Raytrace {
	mean := 30 * time.Microsecond
	qop := time.Duration(0.7 * float64(mean) / float64(w.M.Contexts()))
	if qop < 400*time.Nanosecond {
		qop = 400 * time.Nanosecond
	}
	return &Raytrace{
		w:            w,
		lock:         f(w.Env),
		Tiles:        4096,
		MeanTileCost: mean,
		QueueOp:      qop,
	}
}

// Name implements Driver.
func (b *Raytrace) Name() string { return "raytrace" }

// Completed implements Driver (unit: tiles rendered).
func (b *Raytrace) Completed() uint64 { return b.completed }

// tileCost derives a deterministic irregular cost for tile i of frame f.
func (b *Raytrace) tileCost(f uint64, i int) time.Duration {
	h := (uint64(i)*0x9e3779b97f4a7c15 ^ f*0xbf58476d1ce4e5b9)
	h ^= h >> 29
	// Base in [0.5, 1.5) of mean; ~3% of tiles take an extra 8x tail
	// (deep reflections).
	base := float64(h%1000)/1000 + 0.5
	cost := time.Duration(base * float64(b.MeanTileCost))
	if h%33 == 0 {
		cost *= 8
	}
	return cost
}

// Start implements Driver.
func (b *Raytrace) Start(n int) {
	for i := 0; i < n; i++ {
		b.w.P.NewThread(fmt.Sprintf("ray%d", i), func(t *cpu.Thread) {
			for {
				// Fetch a tile from the shared queue.
				b.lock.Acquire(t)
				t.Compute(b.QueueOp)
				tile := b.next
				b.next++
				frame := b.frame
				if b.next >= b.Tiles {
					b.next = 0
					b.frame++
				}
				b.lock.Release(t)
				// Render it (pure parallel work).
				t.Compute(b.tileCost(frame, tile))
				b.completed++
			}
		})
	}
}
