package oltp

import (
	"fmt"
	"math/rand"
)

// The TATP-style workload: the telecom benchmark's shape (a big
// read-mostly subscriber table plus a small, churning call-forwarding
// table) at this repo's scale. Two tables:
//
//	sub/<id>      subscriber profile (read by every transaction kind)
//	cf/<id>:<n>   call-forwarding slot n for subscriber id
//
// The mix is read-heavy with a write tail, like TATP's 80/16/4 split,
// and subscriber choice is skewed: a configurable fraction of accesses
// lands on a small hot set, so a few partitions (= kv shards) carry
// most of the logical and physical contention — the regime where the
// paper's lock-manager convoys form.

// TATPConfig sizes the workload.
type TATPConfig struct {
	// Subscribers is the subscriber population (default 4096).
	Subscribers int
	// CFSlots is the number of call-forwarding slots per subscriber
	// (default 4; slot 0 is pre-populated for even subscriber ids).
	CFSlots int
	// HotAccessFrac is the fraction of transactions aimed at the hot
	// set. Zero is honored — a uniform, unskewed workload — so the
	// skew can be measured against its absence; negative means the
	// standard skew (0.6).
	HotAccessFrac float64
	// HotSetFrac is the hot set's size as a fraction of the
	// population (<= 0 means the default 1/64; at least 1 subscriber).
	HotSetFrac float64
}

func (c TATPConfig) withDefaults() TATPConfig {
	if c.Subscribers <= 0 {
		c.Subscribers = 4096
	}
	if c.CFSlots <= 0 {
		c.CFSlots = 4
	}
	if c.HotAccessFrac < 0 {
		c.HotAccessFrac = 0.6
	}
	if c.HotSetFrac <= 0 {
		c.HotSetFrac = 1.0 / 64
	}
	return c
}

// TxnKind names the TATP-style transaction types.
type TxnKind int

const (
	GetSubscriberData    TxnKind = iota // read subscriber + one cf slot
	UpdateLocation                      // read-modify-write subscriber (S→X upgrade)
	UpdateSubscriberData                // write subscriber + write cf slot
	InsertCallForwarding                // read subscriber, insert cf slot
	DeleteCallForwarding                // read subscriber, delete cf slot
	numTxnKinds
)

func (k TxnKind) String() string {
	switch k {
	case GetSubscriberData:
		return "GetSubscriberData"
	case UpdateLocation:
		return "UpdateLocation"
	case UpdateSubscriberData:
		return "UpdateSubscriberData"
	case InsertCallForwarding:
		return "InsertCallForwarding"
	case DeleteCallForwarding:
		return "DeleteCallForwarding"
	default:
		return fmt.Sprintf("TxnKind(%d)", int(k))
	}
}

// TATP drives the workload against one DB. Safe for concurrent use;
// each worker supplies its own rand.Rand.
type TATP struct {
	db  *DB
	cfg TATPConfig
	hot int // hot set is subscriber ids [0, hot)
}

const (
	subTable = "sub"
	cfTable  = "cf"
)

func subKey(id int) string      { return fmt.Sprintf("%08d", id) }
func cfKey(id, slot int) string { return fmt.Sprintf("%08d:%d", id, slot) }
func profile(id, version int) string {
	return fmt.Sprintf("sub=%d bit=%d hex=%x ver=%d", id, id&1, id&0xff, version)
}

// NewTATP populates the store (directly, not transactionally — initial
// load needs no isolation) and returns the driver.
func NewTATP(db *DB, cfg TATPConfig) *TATP {
	c := cfg.withDefaults()
	w := &TATP{db: db, cfg: c, hot: max(1, int(float64(c.Subscribers)*c.HotSetFrac))}
	for id := 0; id < c.Subscribers; id++ {
		db.store.Put(storageKey(subTable, subKey(id)), profile(id, 0))
		if id%2 == 0 {
			db.store.Put(storageKey(cfTable, cfKey(id, 0)), "fwd=+000000000")
		}
	}
	return w
}

// Config returns the (defaulted) configuration in use.
func (w *TATP) Config() TATPConfig { return w.cfg }

// pickSubscriber applies the hot-set skew.
func (w *TATP) pickSubscriber(rng *rand.Rand) int {
	if rng.Float64() < w.cfg.HotAccessFrac {
		return rng.Intn(w.hot)
	}
	return rng.Intn(w.cfg.Subscribers)
}

// PickKind rolls the transaction mix: 80% reads, 14% updates, 6%
// insert/delete — TATP's read-heavy shape.
func (w *TATP) PickKind(rng *rand.Rand) TxnKind {
	switch x := rng.Intn(100); {
	case x < 80:
		return GetSubscriberData
	case x < 90:
		return UpdateLocation
	case x < 94:
		return UpdateSubscriberData
	case x < 97:
		return InsertCallForwarding
	default:
		return DeleteCallForwarding
	}
}

// Run executes one transaction of the given kind via DB.Run (so
// wait-die aborts are retried under the original timestamp). The
// returned error is terminal: retries exhausted or a real failure.
func (w *TATP) Run(kind TxnKind, rng *rand.Rand) error {
	id := w.pickSubscriber(rng)
	slot := rng.Intn(w.cfg.CFSlots)
	version := rng.Int()
	switch kind {
	case GetSubscriberData:
		return w.db.Run(func(t *Txn) error {
			if _, ok, err := t.Read(subTable, subKey(id)); err != nil || !ok {
				if err != nil {
					return err
				}
				return fmt.Errorf("tatp: subscriber %d missing", id)
			}
			_, _, err := t.Read(cfTable, cfKey(id, slot))
			return err
		})
	case UpdateLocation:
		// Read-modify-write on one record: the S→X upgrade path, the
		// classic wait-die collision when two sessions hit the same
		// hot subscriber.
		return w.db.Run(func(t *Txn) error {
			_, ok, err := t.Read(subTable, subKey(id))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("tatp: subscriber %d missing", id)
			}
			return t.Write(subTable, subKey(id), profile(id, version))
		})
	case UpdateSubscriberData:
		return w.db.Run(func(t *Txn) error {
			if err := t.Write(subTable, subKey(id), profile(id, version)); err != nil {
				return err
			}
			return t.Write(cfTable, cfKey(id, slot), fmt.Sprintf("fwd=+%09d", version%1_000_000_000))
		})
	case InsertCallForwarding:
		return w.db.Run(func(t *Txn) error {
			if _, ok, err := t.Read(subTable, subKey(id)); err != nil || !ok {
				if err != nil {
					return err
				}
				return fmt.Errorf("tatp: subscriber %d missing", id)
			}
			return t.Write(cfTable, cfKey(id, slot), fmt.Sprintf("fwd=+%09d", version%1_000_000_000))
		})
	case DeleteCallForwarding:
		return w.db.Run(func(t *Txn) error {
			if _, ok, err := t.Read(subTable, subKey(id)); err != nil || !ok {
				if err != nil {
					return err
				}
				return fmt.Errorf("tatp: subscriber %d missing", id)
			}
			return t.Delete(cfTable, cfKey(id, slot))
		})
	default:
		return fmt.Errorf("tatp: unknown txn kind %v", kind)
	}
}
