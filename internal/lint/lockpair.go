package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Lockpair flags a golc acquisition that some path out of the function
// fails to release. The walker is defer-aware (both `defer mu.Unlock()`
// and releases inside a `defer func(){...}()` literal count) and credits
// TryLock holds only to the branch the probe guards, so the standard
//
//	if mu.TryLock() { defer mu.Unlock(); ... }
//
// shape passes clean. Functions that intentionally return holding a
// lock (acquire helpers) are the reason //lint:allow exists.
var Lockpair = &Analyzer{
	Name: "lockpair",
	Doc: "golc Lock/RLock/TryLock/LockCtx acquisitions must be released on every path " +
		"out of the acquiring function (defer-aware). An acquisition that escapes a " +
		"function without its Unlock/RUnlock is either a leak — every later acquirer " +
		"parks forever, and with the load-controlled policy the whole slot pool drains — " +
		"or an acquire-helper contract that must be recorded with //lint:allow.",
	Run: runLockpair,
}

func runLockpair(pass *Pass) error {
	forEachFuncDecl(pass.Pkg, func(fd *ast.FuncDecl) {
		type leak struct {
			h    heldLock
			exit token.Pos
		}
		// First leaking exit per acquisition site; one report per
		// acquire, not one per path.
		leaks := make(map[token.Pos]leak)
		var order []token.Pos
		walkFunc(pass.Pkg.Info, fd.Body, hooks{
			onExit: func(pos token.Pos, held []heldLock) {
				for _, h := range held {
					if h.key == "" {
						continue
					}
					if _, ok := leaks[h.pos]; !ok {
						leaks[h.pos] = leak{h, pos}
						order = append(order, h.pos)
					}
				}
			},
		})
		for _, p := range order {
			lk := leaks[p]
			recv := strings.TrimSuffix(strings.TrimSuffix(lk.h.key, "/W"), "/R")
			rel := "Unlock"
			if lk.h.read {
				rel = "RUnlock"
			}
			pass.Reportf(p, "%s.%s() is not released on every path: function can exit at line %d without %s.%s()",
				recv, lk.h.name, pass.Pkg.Fset.Position(lk.exit).Line, recv, rel)
		}
	})
	return nil
}
