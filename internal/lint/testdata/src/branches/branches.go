// Package branches holds failing fixtures for the walker's labeled
// break/continue and goto handling: each function leaks a lock, or
// parks while holding one, along a path only visible when branch
// targets carry the abstract state to the right join point.
package branches

import "repro/internal/golc"

// labeledBreakLeak: break outer jumps out of both loops with mu still
// held; the function exits without an Unlock on that path.
func labeledBreakLeak(mu *golc.Mutex, ready func() bool) {
outer:
	for {
		mu.Lock() // want `mu\.Lock\(\) is not released on every path`
		for {
			if ready() {
				break outer
			}
		}
	}
}

// continueLeak: the labeled continue iterates with mu still held, so
// the loop can exit (and the function return) on a path that never
// released it — and the next iteration acquires while holding.
func continueLeak(mus []*golc.Mutex, skip func(int) bool) {
loop:
	for i, mu := range mus {
		mu.Lock() // want `mu\.Lock\(\) is not released on every path` `Lock may park while mu is held`
		if skip(i) {
			continue loop
		}
		mu.Unlock()
	}
}

// gotoLeak: the goto path jumps over the Unlock.
func gotoLeak(mu *golc.Mutex, n int) int {
	mu.Lock() // want `mu\.Lock\(\) is not released on every path`
	if n > 0 {
		goto done
	}
	mu.Unlock()
	return 0
done:
	return n
}

// gotoPark: the goto carries the held set to the label, where a second
// acquisition parks while a is held.
func gotoPark(a, b *golc.Mutex, n int) {
	a.Lock()
	if n > 0 {
		goto wait
	}
	a.Unlock()
	return
wait:
	b.Lock() // want `Lock may park while a is held`
	b.Unlock()
	a.Unlock()
}

// switchBreakLeak: the break leaves the switch, not the loop — the
// path that falls out of the switch returns with mu held.
func switchBreakLeak(mu *golc.Mutex, next func() int) {
	for {
		mu.Lock() // want `mu\.Lock\(\) is not released on every path`
		switch next() {
		case 0:
			break
		default:
			mu.Unlock()
			continue
		}
		return
	}
}
