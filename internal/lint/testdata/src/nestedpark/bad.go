// Package nestedpark holds failing fixtures for the nestedpark
// analyzer: parking-capable operations reached while a golc lock is
// held.
package nestedpark

import (
	"context"

	"repro/internal/golc"
	lcrt "repro/internal/golc/runtime"
)

type pair struct {
	a *golc.Mutex
	b *golc.Mutex
	r *golc.RWMutex
}

func directNested(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `may park while p\.a is held`
	p.b.Unlock()
	p.a.Unlock()
}

func readNested(p *pair) {
	p.a.Lock()
	p.r.RLock() // want `may park while p\.a is held`
	p.r.RUnlock()
	p.a.Unlock()
}

func ctxNested(ctx context.Context, p *pair) error {
	p.a.Lock()
	defer p.a.Unlock()
	if err := p.r.LockCtx(ctx); err != nil { // want `may park while p\.a is held`
		return err
	}
	p.r.Unlock()
	return nil
}

func viaHelper(p *pair) {
	p.a.Lock()
	helperThatParks(p.b) // want `may park .* while p\.a is held`
	p.a.Unlock()
}

func helperThatParks(mu *golc.Mutex) {
	mu.Lock()
	mu.Unlock()
}

func policyWaitWhileHolding(p *pair, pol golc.ContentionPolicy, h *lcrt.Handle, acq golc.Acquire) error {
	p.a.Lock()
	defer p.a.Unlock()
	return pol.Wait(context.Background(), h, acq) // want `parks while p\.a is held`
}
